(* Tests for dumbnet-lint: every rule exercised through fixtures under
   lint_fixtures/ (positive, negative, waived), plus the repo gate — the
   real tree must lint clean with a small set of reasoned, load-bearing
   waivers. The fixtures are parsed, never compiled. *)

module Lint = Dumbnet_analysis.Lint
module Rules = Dumbnet_analysis.Rules
module Diagnostic = Dumbnet_analysis.Diagnostic

let check = Alcotest.check

(* Fixtures live outside the repo's hot dirs, so point the R1 scope at
   them; everything else keeps the production defaults. *)
let fixture_config = { Rules.default_config with Rules.hot_dirs = [ "lint_fixtures" ] }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let repo_root () =
  match Lint.find_root () with
  | Some root -> root
  | None -> Alcotest.fail "cannot locate the repo root from the test runner"

(* `dune runtest` runs from _build/default/test where the (deps
   source_tree) sandbox puts the fixtures; `dune exec` runs from the
   repo root, so fall back to the checkout. *)
let fixture_dir =
  lazy
    (if Sys.file_exists "lint_fixtures" then "lint_fixtures"
     else Filename.concat (repo_root ()) "test/lint_fixtures")

let lint_fixture ?(config = fixture_config) ?file name =
  let file = Option.value file ~default:(Filename.concat "lint_fixtures" name) in
  Lint.lint_source ~config ~file
    (read_file (Filename.concat (Lazy.force fixture_dir) name))

(* The interprocedural rules need several units linked together: feed a
   whole fixture set through the two-pass pipeline. *)
let lint_fixture_set ?(config = fixture_config) ?ratchet names =
  Lint.lint_sources ~config ?ratchet
    (List.map
       (fun name ->
         ( Filename.concat "lint_fixtures" name,
           read_file (Filename.concat (Lazy.force fixture_dir) name) ))
       names)

let count rule diags =
  List.length (List.filter (fun d -> d.Diagnostic.rule = rule) diags)

let by_rule rule diags = List.filter (fun d -> d.Diagnostic.rule = rule) diags

let errors diags =
  List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) diags

let contains hay needle =
  let n = String.length needle in
  let h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- R1 --- *)

let test_r1_flags_raising_lookups () =
  let diags, _ = lint_fixture "r1_raising.ml" in
  check Alcotest.int "three raising lookups" 3 (count "R1" diags);
  check Alcotest.int "all are errors" 3 (List.length (errors diags))

let test_r1_silent_on_total_lookups () =
  let diags, _ = lint_fixture "r1_clean.ml" in
  check Alcotest.int "no findings" 0 (List.length diags)

let test_r1_scoped_to_hot_dirs () =
  (* The same raising source, attributed to a cold directory: R1 must
     not fire outside the configured hot paths. *)
  let diags, _ = lint_fixture "r1_raising.ml" ~file:"bench/r1_raising.ml" in
  check Alcotest.int "cold file untouched" 0 (count "R1" diags)

let test_r1_waiver_suppresses () =
  let diags, waivers = lint_fixture "r1_waived.ml" in
  check Alcotest.int "no findings" 0 (List.length diags);
  match waivers with
  | [ w ] ->
    check Alcotest.int "waiver absorbed the hit" 1 w.Rules.w_hits;
    check Alcotest.bool "reason recorded" true (String.trim w.Rules.w_reason <> "")
  | ws -> Alcotest.failf "expected exactly one waiver, got %d" (List.length ws)

(* --- R2 --- *)

let test_r2_poly_compare () =
  let diags, _ = lint_fixture "r2_poly.ml" in
  check Alcotest.int "ascription, compare and hash all flagged" 3 (count "R2" diags)

(* --- R3 --- *)

let test_r3_callback_raise () =
  let diags, waivers = lint_fixture "r3_callback.ml" in
  check Alcotest.int "only the naked failwith flagged" 1 (count "R3" diags);
  match waivers with
  | [ w ] -> check Alcotest.int "waived raise counted" 1 w.Rules.w_hits
  | ws -> Alcotest.failf "expected exactly one waiver, got %d" (List.length ws)

(* --- R4 --- *)

let test_r4_hot_advisories () =
  let diags, _ = lint_fixture "r4_hot.ml" in
  check Alcotest.int "append, map and loop closure advised" 3 (count "R4" diags);
  check Alcotest.int "advisories are not errors" 0 (List.length (errors diags))

(* --- R5 --- *)

let test_r5_wire_constants () =
  let diags, _ = lint_fixture "r5_wire.ml" in
  (* 0x9800, = 0xff, the 0xff pattern, the hop-limit binding, the
     labelled argument and the record field — the [land 0xff] mask and
     the plain 5s stay silent. *)
  check Alcotest.int "six re-hardcoded constants" 6 (count "R5" diags)

let test_r5_probe_opcodes () =
  let diags, _ = lint_fixture "r5_probe_op.ml" in
  (* The 0xA1 binding, the 0xa2 pattern and the 0xA3 comparison — the
     decimal 161 stays silent. *)
  check Alcotest.int "three re-hardcoded opcodes" 3 (count "R5" diags);
  check Alcotest.int "all are errors" 3 (List.length (errors diags))

let test_r5_probe_opcode_waiver () =
  let diags, waivers = lint_fixture "r5_probe_op_waived.ml" in
  check Alcotest.int "no findings" 0 (List.length diags);
  match waivers with
  | [ w ] -> check Alcotest.int "wire_const waiver used" 1 w.Rules.w_hits
  | ws -> Alcotest.failf "expected exactly one waiver, got %d" (List.length ws)

let test_r5_waiver () =
  let diags, waivers = lint_fixture "r5_waived.ml" in
  check Alcotest.int "no findings" 0 (List.length diags);
  match waivers with
  | [ w ] -> check Alcotest.int "wire_const waiver used" 1 w.Rules.w_hits
  | ws -> Alcotest.failf "expected exactly one waiver, got %d" (List.length ws)

(* --- R6 --- *)

let test_r6_magic_and_ignore () =
  let diags, _ = lint_fixture "r6_magic.ml" in
  check Alcotest.int "Obj.magic and ignored _result call" 2 (count "R6" diags)

(* --- R7 --- *)

let test_r7_domain_primitives () =
  let diags, _ = lint_fixture "r7_domain.ml" in
  check Alcotest.int "spawn, mutex, condvar and atomic flagged" 4 (count "R7" diags);
  (* join/lock/get/recommended_domain_count never create, so stay silent. *)
  check Alcotest.int "nothing else" 4 (List.length diags)

let test_r7_sim_shard_path_fenced () =
  (* The sharded engine lives in lib/sim and schedules its shards through
     Pool — the fence must keep applying there, so the same primitives
     attributed to that path are all still flagged. *)
  let diags, _ = lint_fixture "r7_domain.ml" ~file:"lib/sim/sharded.ml" in
  check Alcotest.int "sharded engine not exempt" 4 (count "R7" diags)

let test_r7_pool_module_exempt () =
  (* The same source attributed to the pool module itself: that is the
     one place raw primitives are allowed. *)
  let diags, _ = lint_fixture "r7_domain.ml" ~file:"lib/util/pool.ml" in
  check Alcotest.int "pool module exempt" 0 (count "R7" diags)

let test_r7_waiver () =
  let diags, waivers = lint_fixture "r7_waived.ml" in
  check Alcotest.int "no findings" 0 (List.length diags);
  match waivers with
  | [ w ] -> check Alcotest.int "domain waiver used" 1 w.Rules.w_hits
  | ws -> Alcotest.failf "expected exactly one waiver, got %d" (List.length ws)

(* --- R8 --- *)

let r8_set = [ "r8_state.ml"; "r8_worker.ml" ]

let test_r8_transitive_race () =
  let report = lint_fixture_set r8_set in
  let r8 = by_rule "R8" report.Lint.diagnostics in
  (* the := write and the ! read of the unguarded ref, nothing else *)
  check Alcotest.int "write and read of the unguarded ref flagged" 2 (List.length r8);
  List.iter
    (fun d ->
      check Alcotest.string "anchored at the access site" "lint_fixtures/r8_state.ml"
        d.Diagnostic.file;
      check Alcotest.bool "names the racing slot" true
        (contains d.Diagnostic.message "R8_state.total");
      check Alcotest.bool "witness shows the worker path" true
        (contains d.Diagnostic.message "R8_worker.run"))
    r8

let test_r8_atomic_and_waived_clean () =
  let report = lint_fixture_set r8_set in
  List.iter
    (fun d ->
      check Alcotest.bool "Atomic slot never flagged" false
        (contains d.Diagnostic.message "R8_state.processed");
      check Alcotest.bool "shared-waived slot never flagged" false
        (contains d.Diagnostic.message "R8_state.debug_count"))
    (by_rule "R8" report.Lint.diagnostics);
  match
    List.filter (fun (w : Rules.waiver) -> w.Rules.w_kind = Rules.Shared)
      report.Lint.waivers
  with
  | [ w ] -> check Alcotest.int "shared waiver absorbed the hit" 1 w.Rules.w_hits
  | ws -> Alcotest.failf "expected exactly one shared waiver, got %d" (List.length ws)

(* --- R9 (interprocedural) --- *)

let test_r9_inference () =
  let report = lint_fixture_set [ "r9_chain.ml" ] in
  let r9 = by_rule "R9" report.Lint.diagnostics in
  check Alcotest.int "mid and leaf inferred hot" 2 (List.length r9);
  check Alcotest.int "inference is advice, not error" 0 (List.length (errors r9));
  check Alcotest.int "count surfaced in the report" 2 report.Lint.inferred_hot_count;
  List.iter
    (fun d ->
      check Alcotest.bool "cold stays cold" false
        (contains d.Diagnostic.message "R9_chain.cold");
      check Alcotest.bool "the annotated root is not re-flagged" false
        (contains d.Diagnostic.message "R9_chain.dispatch is"))
    r9

let test_r9_ratchet_boundary () =
  let ratchet_diags ratchet =
    let report = lint_fixture_set ~ratchet [ "r9_chain.ml" ] in
    List.filter
      (fun d -> d.Diagnostic.file = "lint_ratchet.json")
      report.Lint.diagnostics
  in
  (* exactly at the committed count: silence *)
  check Alcotest.int "at the ratchet: no finding" 0 (List.length (ratchet_diags 2));
  (* above the count: the ratchet is slack, advise lowering it *)
  (match ratchet_diags 3 with
  | [ d ] ->
    check Alcotest.bool "slack is advice" true (d.Diagnostic.severity = Diagnostic.Advice)
  | ds -> Alcotest.failf "expected one slack advisory, got %d" (List.length ds));
  (* below the count: new inferred-hot functions appeared — error *)
  match ratchet_diags 1 with
  | [ d ] ->
    check Alcotest.bool "exceeded ratchet is an error" true
      (d.Diagnostic.severity = Diagnostic.Error)
  | ds -> Alcotest.failf "expected one ratchet error, got %d" (List.length ds)

(* --- R10 (interprocedural) --- *)

let test_r10_transitive_raise () =
  let report = lint_fixture_set [ "r10_helper.ml"; "r10_mid.ml"; "r10_cb.ml" ] in
  check Alcotest.int "no syntactic R3 finding anywhere" 0
    (count "R3" report.Lint.diagnostics);
  match by_rule "R10" report.Lint.diagnostics with
  | [ d ] ->
    check Alcotest.string "the unguarded callback is flagged" "lint_fixtures/r10_cb.ml"
      d.Diagnostic.file;
    check Alcotest.bool "witness chain reaches the raising leaf" true
      (contains d.Diagnostic.message "R10_mid.step");
    check Alcotest.bool "names the raiser" true (contains d.Diagnostic.message "failwith")
  | ds ->
    Alcotest.failf "expected exactly one R10 finding (guarded must stay clean), got %d"
      (List.length ds)

(* --- W1 --- *)

let test_w1_waiver_hygiene () =
  let diags, waivers = lint_fixture "w1_unused.ml" in
  check Alcotest.int "unused waiver and missing reason" 2 (count "W1" diags);
  check Alcotest.int "both waivers reported" 2 (List.length waivers)

(* --- the diagnostic JSON schema --- *)

let test_diag_json_roundtrip () =
  let cases =
    [
      Diagnostic.make ~rule:"R8" ~severity:Diagnostic.Error ~file:"lib/sim/engine.ml"
        ~line:42 ~col:7 "plain ascii message";
      Diagnostic.make ~rule:"R9" ~severity:Diagnostic.Advice ~file:"lib/a \"b\"\\c.ml"
        ~line:1 ~col:0 "quotes \"here\", a\ttab, a\nnewline and a backslash \\";
      Diagnostic.make ~rule:"W2" ~severity:Diagnostic.Error ~file:"lint_ratchet.json"
        ~line:1 ~col:0 "control char \x01 survives";
    ]
  in
  List.iter
    (fun d ->
      match Diagnostic.of_json (Diagnostic.to_json d) with
      | Some d' ->
        check Alcotest.bool
          (Printf.sprintf "%s round-trips" d.Diagnostic.rule)
          true (d = d')
      | None -> Alcotest.failf "of_json rejected its own to_json for %s" d.Diagnostic.rule)
    cases

let test_diag_json_rejects_malformed () =
  List.iter
    (fun s ->
      check Alcotest.bool (Printf.sprintf "rejects %S" s) true
        (Diagnostic.of_json s = None))
    [
      "";
      "{";
      "not json at all";
      {|{"file":"a.ml","line":1,"col":0,"rule":"R1","severity":"fatal","message":"m"}|};
      {|{"file":"a.ml","line":1,"col":0,"rule":"R1","severity":"error"}|};
      {|{"file":"a.ml","line":"one","col":0,"rule":"R1","severity":"error","message":"m"}|};
    ]

(* --- parse failures --- *)

let test_parse_error_is_a_finding () =
  let diags, _ =
    Lint.lint_source ~config:fixture_config ~file:"lint_fixtures/broken.ml"
      "let = let in ;;"
  in
  check Alcotest.int "one parse diagnostic" 1 (count "parse" diags);
  check Alcotest.int "and it is an error" 1 (List.length (errors diags))

(* --- the repo gate --- *)

let test_repo_gate_clean () =
  let root = repo_root () in
  let ratchet = Lint.read_ratchet ~root in
  check Alcotest.bool "R9 ratchet is committed" true (ratchet <> None);
  let report =
    Lint.scan ?ratchet ~root ~dirs:[ "lib"; "bin"; "bench"; "examples" ] ()
  in
  check Alcotest.bool "scanned a real tree" true (report.Lint.files_scanned > 20);
  check Alcotest.bool "hot paths inferred" true (report.Lint.inferred_hot_count > 0);
  (match Lint.errors report with
  | [] -> ()
  | d :: _ ->
    Alcotest.failf "repo must lint clean, first error: %s"
      (Format.asprintf "%a" Diagnostic.pp d));
  let waivers = report.Lint.waivers in
  check Alcotest.bool "waiver budget respected" true
    (List.length waivers <= Rules.default_config.Rules.max_waivers);
  List.iter
    (fun (w : Rules.waiver) ->
      check Alcotest.bool
        (Printf.sprintf "%s:%d waiver has a reason" w.Rules.w_file w.Rules.w_line)
        true
        (String.trim w.Rules.w_reason <> "");
      check Alcotest.bool
        (Printf.sprintf "%s:%d waiver is load-bearing" w.Rules.w_file w.Rules.w_line)
        true (w.Rules.w_hits > 0))
    waivers

let test_repo_gate_ratchet () =
  (* Reintroducing a raising lookup under lib/sim must fail the gate. *)
  let diags, _ =
    Lint.lint_source ~file:"lib/sim/regression.ml" "let f tbl k = Hashtbl.find tbl k"
  in
  check Alcotest.int "regression caught" 1 (count "R1" diags)

let test_waiver_budget_enforced () =
  (* With the budget forced to zero, every existing waiver turns into a
     W2 error — the cap is live, not decorative. *)
  let config = { Rules.default_config with Rules.max_waivers = 0 } in
  let report = Lint.scan ~config ~root:(repo_root ()) ~dirs:[ "lib" ] () in
  let w2 = count "W2" report.Lint.diagnostics in
  check Alcotest.bool "repo has waivers to cap" true (List.length report.Lint.waivers > 0);
  check Alcotest.int "every waiver beyond the budget errors" (List.length report.Lint.waivers) w2

let test_waiver_budget_boundary () =
  (* Three used waivers: a budget of exactly three is silent, a budget
     of two errors on precisely the one waiver past the line. *)
  let names = [ "r1_waived.ml"; "r5_waived.ml"; "r7_waived.ml" ] in
  let at = lint_fixture_set ~config:{ fixture_config with Rules.max_waivers = 3 } names in
  check Alcotest.int "three waivers seen" 3 (List.length at.Lint.waivers);
  check Alcotest.int "at the budget: no W2" 0 (count "W2" at.Lint.diagnostics);
  check Alcotest.int "at the budget: no errors at all" 0
    (List.length (errors at.Lint.diagnostics));
  let over =
    lint_fixture_set ~config:{ fixture_config with Rules.max_waivers = 2 } names
  in
  check Alcotest.int "one past the budget: one W2" 1 (count "W2" over.Lint.diagnostics)

let test_scan_dedups_dirs () =
  (* Overlapping and repeated directory arguments must not double-count
     files, findings, or waivers. *)
  let root = repo_root () in
  let once = Lint.scan ~root ~dirs:[ "lib" ] () in
  let dup = Lint.scan ~root ~dirs:[ "lib"; "lib/analysis"; "lib"; "lib/topology" ] () in
  check Alcotest.int "same files" once.Lint.files_scanned dup.Lint.files_scanned;
  check Alcotest.int "same findings"
    (List.length once.Lint.diagnostics)
    (List.length dup.Lint.diagnostics);
  check Alcotest.int "same waivers"
    (List.length once.Lint.waivers)
    (List.length dup.Lint.waivers)

let test_read_ratchet () =
  let dir = Filename.temp_file "dumbnet_lint" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  check
    (Alcotest.option Alcotest.int)
    "absent file reads as None" None (Lint.read_ratchet ~root:dir);
  let oc = open_out (Filename.concat dir Lint.ratchet_file) in
  output_string oc "{\n  \"r9_inferred_hot\": 42\n}\n";
  close_out oc;
  check
    (Alcotest.option Alcotest.int)
    "committed count read back" (Some 42) (Lint.read_ratchet ~root:dir)

let () =
  Alcotest.run "analysis"
    [
      ( "r1",
        [
          Alcotest.test_case "flags raising lookups" `Quick test_r1_flags_raising_lookups;
          Alcotest.test_case "silent on total lookups" `Quick
            test_r1_silent_on_total_lookups;
          Alcotest.test_case "scoped to hot dirs" `Quick test_r1_scoped_to_hot_dirs;
          Alcotest.test_case "waiver suppresses" `Quick test_r1_waiver_suppresses;
        ] );
      ("r2", [ Alcotest.test_case "poly compare" `Quick test_r2_poly_compare ]);
      ("r3", [ Alcotest.test_case "callback raise" `Quick test_r3_callback_raise ]);
      ("r4", [ Alcotest.test_case "hot advisories" `Quick test_r4_hot_advisories ]);
      ( "r5",
        [
          Alcotest.test_case "wire constants" `Quick test_r5_wire_constants;
          Alcotest.test_case "probe opcodes" `Quick test_r5_probe_opcodes;
          Alcotest.test_case "probe opcode waiver" `Quick test_r5_probe_opcode_waiver;
          Alcotest.test_case "wire_const waiver" `Quick test_r5_waiver;
        ] );
      ("r6", [ Alcotest.test_case "magic and ignore" `Quick test_r6_magic_and_ignore ]);
      ( "r7",
        [
          Alcotest.test_case "domain primitives fenced" `Quick test_r7_domain_primitives;
          Alcotest.test_case "sharded engine path fenced" `Quick test_r7_sim_shard_path_fenced;
          Alcotest.test_case "pool module exempt" `Quick test_r7_pool_module_exempt;
          Alcotest.test_case "domain waiver" `Quick test_r7_waiver;
        ] );
      ( "r8",
        [
          Alcotest.test_case "transitive race flagged" `Quick test_r8_transitive_race;
          Alcotest.test_case "atomic and waived state clean" `Quick
            test_r8_atomic_and_waived_clean;
        ] );
      ( "r9",
        [
          Alcotest.test_case "hotness propagates" `Quick test_r9_inference;
          Alcotest.test_case "ratchet boundary" `Quick test_r9_ratchet_boundary;
        ] );
      ( "r10",
        [ Alcotest.test_case "transitive raise flagged" `Quick test_r10_transitive_raise ]
      );
      ("w1", [ Alcotest.test_case "waiver hygiene" `Quick test_w1_waiver_hygiene ]);
      ( "json",
        [
          Alcotest.test_case "diagnostic round-trips" `Quick test_diag_json_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_diag_json_rejects_malformed;
        ] );
      ( "parse",
        [ Alcotest.test_case "parse error is a finding" `Quick test_parse_error_is_a_finding ]
      );
      ( "gate",
        [
          Alcotest.test_case "repo lints clean" `Quick test_repo_gate_clean;
          Alcotest.test_case "ratchet catches regressions" `Quick test_repo_gate_ratchet;
          Alcotest.test_case "waiver budget enforced" `Quick test_waiver_budget_enforced;
          Alcotest.test_case "waiver budget boundary" `Quick test_waiver_budget_boundary;
          Alcotest.test_case "scan dedups directories" `Quick test_scan_dedups_dirs;
          Alcotest.test_case "ratchet file read back" `Quick test_read_ratchet;
        ] );
    ]
