(* Tests for the in-band telemetry subsystem: the stamp codec and the
   frame's telemetry region (including malformed-region rejection), the
   switch-side stamping, the collector's estimates, the loop prober,
   and end-to-end gray-failure eviction in the simulator. *)

open Dumbnet.Packet
open Dumbnet.Topology
open Dumbnet.Topology.Types
module Tel = Dumbnet.Telemetry
module Sim = Dumbnet.Sim
module Host = Dumbnet.Host

let check = Alcotest.check

let stamp ?(sw = 3) ?(port = 7) ?(queue = 12_345) ?(ts = 987_654_321) () =
  { Int_stamp.switch = sw; port; queue_depth = queue; timestamp_ns = ts }

(* --- stamp codec --- *)

let test_stamp_roundtrip () =
  let s = stamp () in
  let w = Wire.Writer.create () in
  Int_stamp.write w s;
  let b = Wire.Writer.contents w in
  check Alcotest.int "wire size" Int_stamp.wire_size (Bytes.length b);
  let r = Wire.Reader.of_bytes b in
  Alcotest.(check bool) "roundtrip" true (Int_stamp.equal s (Int_stamp.read r));
  check Alcotest.int "link end" 3 (Int_stamp.link_end s).sw

let test_stamp_rejects_bad_port () =
  (* A stamp whose port byte is 0 cannot name a real egress. *)
  let w = Wire.Writer.create () in
  Int_stamp.write w (stamp ());
  let b = Wire.Writer.contents w in
  Bytes.set b 4 '\x00';
  Alcotest.(check bool) "port 0 rejected" true
    (try
       ignore (Int_stamp.read (Wire.Reader.of_bytes b));
       false
     with Wire.Truncated -> true)

let test_stamp_rejects_truncation () =
  let w = Wire.Writer.create () in
  Int_stamp.write w (stamp ());
  let b = Wire.Writer.contents w in
  Alcotest.(check bool) "short read rejected" true
    (try
       ignore (Int_stamp.read (Wire.Reader.of_bytes (Bytes.sub b 0 10)));
       false
     with Wire.Truncated -> true)

(* --- frame telemetry region --- *)

let int_frame () =
  Frame.along_path ~src:1 ~dst:2 ~tags_of:[ 2; 5 ]
    ~payload:(Payload.Data { flow = 9; seq = 0; sent_ns = 77; size = 100 })
  |> Frame.with_int
  |> Frame.add_stamp (stamp ~sw:0 ~port:2 ~queue:0 ~ts:100 ())
  |> Frame.add_stamp (stamp ~sw:4 ~port:5 ~queue:900 ~ts:1500 ())

let test_frame_int_roundtrip () =
  let f = int_frame () in
  check Alcotest.int "two stamps" 2 (Frame.stamp_count f);
  Alcotest.(check bool) "roundtrip" true (Frame.equal f (Frame.of_bytes (Frame.to_bytes f)));
  (* The region costs one count byte plus a fixed width per stamp. *)
  let bare = Frame.along_path ~src:1 ~dst:2 ~tags_of:[ 2; 5 ] ~payload:f.Frame.payload in
  check Alcotest.int "header growth"
    (Frame.header_bytes bare + 1 + (2 * Int_stamp.wire_size))
    (Frame.header_bytes f)

let test_add_stamp_requires_flag () =
  let f =
    Frame.along_path ~src:1 ~dst:2 ~tags_of:[ 2 ]
      ~payload:(Payload.Data { flow = 0; seq = 0; sent_ns = 0; size = 10 })
  in
  let f' = Frame.add_stamp (stamp ()) f in
  Alcotest.(check bool) "no flag, no stamp" true (Frame.int_stamps f' = [])

let test_add_stamp_saturates () =
  let f = ref (Frame.with_int (int_frame ())) in
  for i = 1 to 20 do
    f := Frame.add_stamp (stamp ~ts:(1000 + i) ()) !f
  done;
  check Alcotest.int "capped" Int_stamp.max_per_frame (Frame.stamp_count !f);
  (* A saturated region still round-trips. *)
  Alcotest.(check bool) "roundtrip" true
    (Frame.equal !f (Frame.of_bytes (Frame.to_bytes !f)))

(* Corrupt the telemetry count byte of an encoded frame, refreshing the
   FCS so only the region check can object. *)
let with_count_byte f count =
  let b = Frame.to_bytes f in
  let count_at = 14 + List.length f.Frame.tags + 1 in
  Bytes.set b count_at (Char.chr count);
  let body_len = Bytes.length b - 4 in
  let crc = Crc32.digest_sub b ~pos:0 ~len:body_len in
  Bytes.set b body_len (Char.chr (Int32.to_int (Int32.shift_right_logical crc 24) land 0xFF));
  Bytes.set b (body_len + 1)
    (Char.chr (Int32.to_int (Int32.shift_right_logical crc 16) land 0xFF));
  Bytes.set b (body_len + 2)
    (Char.chr (Int32.to_int (Int32.shift_right_logical crc 8) land 0xFF));
  Bytes.set b (body_len + 3) (Char.chr (Int32.to_int crc land 0xFF));
  b

let test_frame_rejects_oversize_count () =
  let b = with_count_byte (int_frame ()) (Int_stamp.max_per_frame + 1) in
  Alcotest.(check bool) "count above cap rejected" true
    (try
       ignore (Frame.of_bytes b);
       false
     with Wire.Truncated -> true)

let test_frame_rejects_region_past_end () =
  (* Count 15 with only two stamps present: the region would run past
     the payload and FCS. *)
  let b = with_count_byte (int_frame ()) Int_stamp.max_per_frame in
  Alcotest.(check bool) "region overrun rejected" true
    (try
       ignore (Frame.of_bytes b);
       false
     with Wire.Truncated -> true)

let test_int_probe_payload_roundtrip () =
  let p = Payload.Int_probe { origin = 12; seq = 345; sent_ns = 6789 } in
  Alcotest.(check bool) "roundtrip" true
    (Payload.equal p (Payload.decode (Payload.encode p)));
  Alcotest.(check bool) "data lane" true (Frame.priority_of_payload p = Frame.Normal)

(* --- switch stamping --- *)

let test_dataplane_stamps_on_pop () =
  let f = Frame.with_int (int_frame ()) in
  let hw p = stamp ~sw:9 ~port:p ~queue:4321 ~ts:5555 () in
  match
    Dumbnet.Switch.Dataplane.handle ~self:9 ~num_ports:8
      ~port_up:(fun _ -> true)
      ~stamp:hw ~in_port:1 f
  with
  | Dumbnet.Switch.Dataplane.Forward (p, f') ->
    check Alcotest.int "tag consumed" 2 p;
    check Alcotest.int "stamp appended" 3 (Frame.stamp_count f');
    let last = List.nth (Frame.int_stamps f') 2 in
    Alcotest.(check bool) "egress stamped" true (Int_stamp.equal last (hw 2))
  | _ -> Alcotest.fail "expected Forward"

let test_dataplane_skips_unflagged () =
  let f =
    Frame.along_path ~src:1 ~dst:2 ~tags_of:[ 2 ]
      ~payload:(Payload.Data { flow = 0; seq = 0; sent_ns = 0; size = 10 })
  in
  match
    Dumbnet.Switch.Dataplane.handle ~self:9 ~num_ports:8
      ~port_up:(fun _ -> true)
      ~stamp:(fun p -> stamp ~port:p ())
      ~in_port:1 f
  with
  | Dumbnet.Switch.Dataplane.Forward (_, f') ->
    Alcotest.(check bool) "no stamp" true (Frame.int_stamps f' = [])
  | _ -> Alcotest.fail "expected Forward"

(* --- collector --- *)

let le sw port = { sw; port }

let test_collector_ewma_convergence () =
  let c = Tel.Collector.create ~alpha:0.5 () in
  (* First sample seeds the estimate, later samples blend toward the
     signal. *)
  Tel.Collector.observe c ~now_ns:0 [ stamp ~sw:1 ~port:2 ~queue:0 () ];
  for i = 1 to 20 do
    Tel.Collector.observe c ~now_ns:(i * 1000) [ stamp ~sw:1 ~port:2 ~queue:10_000 () ]
  done;
  match Tel.Collector.queue_estimate c (le 1 2) with
  | None -> Alcotest.fail "no estimate"
  | Some q ->
    Alcotest.(check bool) "converged" true (abs_float (q -. 10_000.) < 50.)

let test_collector_latency_from_stamp_pairs () =
  let c = Tel.Collector.create () in
  let chain =
    [ stamp ~sw:1 ~port:2 ~queue:0 ~ts:1_000 (); stamp ~sw:5 ~port:3 ~queue:0 ~ts:3_500 () ]
  in
  Tel.Collector.observe c ~now_ns:0 chain;
  Alcotest.(check bool) "hop latency attributed to earlier egress" true
    (Tel.Collector.latency_estimate c (le 1 2) = Some 2_500.);
  Alcotest.(check bool) "last stamp has no pair" true
    (Tel.Collector.latency_estimate c (le 5 3) = None);
  (* Unsampled hops fall back to the default cost; sampled hops use the
     estimate — so the sampled path prices higher here. *)
  let cost_known = Tel.Collector.hop_cost_ns c (1, 2) in
  Alcotest.(check bool) "sampled hop uses estimate" true (cost_known = 2_500.);
  Alcotest.(check bool) "unknown hop uses default" true
    (Tel.Collector.hop_cost_ns c (8, 8) > 0.)

let test_collector_losses () =
  let c = Tel.Collector.create () in
  Tel.Collector.note_loss c (le 2 2);
  Tel.Collector.note_loss c (le 2 2);
  check Alcotest.int "losses counted" 2 (Tel.Collector.losses c (le 2 2));
  check Alcotest.int "other links clean" 0 (Tel.Collector.losses c (le 2 3))

let test_health_flags_losses () =
  let c = Tel.Collector.create () in
  let h = Tel.Health.create ~loss_threshold:3 () in
  Tel.Collector.note_loss c (le 4 1);
  check Alcotest.int "below threshold" 0 (List.length (Tel.Health.check h ~now_ns:10 c));
  Tel.Collector.note_loss c (le 4 1);
  Tel.Collector.note_loss c (le 4 1);
  (match Tel.Health.check h ~now_ns:20 c with
  | [ flagged ] -> Alcotest.(check bool) "right link" true (flagged = le 4 1)
  | _ -> Alcotest.fail "expected one flagged link");
  check Alcotest.int "flagged once only" 0 (List.length (Tel.Health.check h ~now_ns:30 c));
  Alcotest.(check bool) "detection recorded" true
    (Tel.Health.detections h = [ (le 4 1, 20) ])

(* --- prober over a simulated fabric --- *)

let test_prober_loops_return () =
  (* Asymmetric on purpose: with spines = leaves the uniform port
     numbering lets even misordered loop tags wander home. *)
  let built = Builder.leaf_spine ~spines:2 ~leaves:3 ~hosts_per_leaf:2 () in
  let fab = Dumbnet.Fabric.create ~seed:3 built in
  let eng = Dumbnet.Fabric.engine fab in
  let observer =
    List.find (fun h -> h <> built.Builder.controller) built.Builder.hosts
  in
  let agent = Dumbnet.Fabric.agent fab observer in
  List.iter
    (fun dst -> if dst <> observer then ignore (Host.Agent.query_path agent ~dst))
    built.Builder.hosts;
  Dumbnet.Fabric.run fab;
  let ep = Tel.Endpoint.attach ~probe_interval_ns:100_000 ~engine:eng ~agent () in
  Dumbnet.Fabric.run ~for_ns:10_000_000 fab;
  let prober = Tel.Endpoint.prober ep in
  Tel.Prober.stop prober;
  Dumbnet.Fabric.run fab;
  Alcotest.(check bool) "probes flowed" true (Tel.Prober.sent prober > 50);
  check Alcotest.int "all loops came home" (Tel.Prober.sent prober)
    (Tel.Prober.returned prober);
  check Alcotest.int "no losses" 0 (Tel.Prober.lost prober);
  (* The collector learned a healthy idle-fabric latency for real
     switch-to-switch egresses. *)
  let collector = Tel.Endpoint.collector ep in
  let sampled =
    List.filter
      (fun (_, (s : Tel.Collector.snapshot)) -> s.Tel.Collector.latency_samples > 0)
      (Tel.Collector.known_links collector)
  in
  Alcotest.(check bool) "several links sampled" true (List.length sampled >= 4);
  List.iter
    (fun (_, (s : Tel.Collector.snapshot)) ->
      Alcotest.(check bool) "idle hop around a microsecond" true
        (s.Tel.Collector.latency_ns > 200. && s.Tel.Collector.latency_ns < 10_000.))
    sampled

(* --- gray failure: detect, evict, no controller involvement --- *)

let test_gray_failure_evicted () =
  let built = Builder.leaf_spine ~spines:2 ~leaves:2 ~hosts_per_leaf:2 () in
  let fab = Dumbnet.Fabric.create ~seed:3 built in
  let net = Dumbnet.Fabric.network fab in
  let eng = Dumbnet.Fabric.engine fab in
  let g = Sim.Network.graph net in
  let leaf_of h = (Option.get (Graph.host_location g h)).sw in
  let observer =
    List.find (fun h -> h <> built.Builder.controller) built.Builder.hosts
  in
  let victim = List.find (fun h -> leaf_of h <> leaf_of observer) built.Builder.hosts in
  let agent = Dumbnet.Fabric.agent fab observer in
  List.iter
    (fun dst -> if dst <> observer then ignore (Host.Agent.query_path agent ~dst))
    built.Builder.hosts;
  Dumbnet.Fabric.run fab;
  let health = Tel.Health.create ~latency_threshold_ns:10_000. () in
  let ep =
    Tel.Endpoint.attach ~health ~probe_interval_ns:50_000 ~health_interval_ns:50_000
      ~engine:eng ~agent ()
  in
  Dumbnet.Fabric.run ~for_ns:2_000_000 fab;
  (* Degrade the spine egress of the observer's primary path: the link
     stays up, so no monitor alarm and no notification — only the
     telemetry can see it. *)
  let slow =
    match Host.Pathtable.paths_to (Host.Agent.pathtable agent) ~dst:victim with
    | { Path.hops = _ :: (sw, port) :: _; _ } :: _ -> { sw; port }
    | _ -> Alcotest.fail "no cached spine path"
  in
  Sim.Network.set_port_bandwidth net slow ~gbps:0.05;
  let q0 = (Host.Agent.stats agent).Host.Agent.queries_sent in
  Dumbnet.Fabric.run ~for_ns:20_000_000 fab;
  Alcotest.(check bool) "flagged by health monitor" true
    (Tel.Health.is_flagged health slow);
  check Alcotest.int "no controller re-probe" q0
    (Host.Agent.stats agent).Host.Agent.queries_sent;
  (* Traffic now routes around the gray link without any re-query. *)
  (match Host.Agent.send_data agent ~dst:victim ~flow:1 ~size:1450 () with
  | Host.Agent.Sent p ->
    Alcotest.(check bool) "avoids slow egress" true
      (not (List.exists (fun (sw, port) -> { sw; port } = slow) p.Path.hops))
  | _ -> Alcotest.fail "expected a cached path");
  Tel.Prober.stop (Tel.Endpoint.prober ep);
  Dumbnet.Fabric.run fab

(* --- demote/promote plumbing --- *)

let test_demote_promote_roundtrip () =
  let built = Builder.leaf_spine ~spines:2 ~leaves:2 ~hosts_per_leaf:2 () in
  let fab = Dumbnet.Fabric.create ~seed:3 built in
  let observer =
    List.find (fun h -> h <> built.Builder.controller) built.Builder.hosts
  in
  let agent = Dumbnet.Fabric.agent fab observer in
  List.iter
    (fun dst -> if dst <> observer then ignore (Host.Agent.query_path agent ~dst))
    built.Builder.hosts;
  Dumbnet.Fabric.run fab;
  let g = Sim.Network.graph (Dumbnet.Fabric.network fab) in
  let leaf_of h = (Option.get (Graph.host_location g h)).sw in
  let victim = List.find (fun h -> leaf_of h <> leaf_of observer) built.Builder.hosts in
  let table = Host.Agent.pathtable agent in
  let crosses le p = List.exists (fun (sw, port) -> { sw; port } = le) p.Path.hops in
  let slow =
    match Host.Pathtable.paths_to table ~dst:victim with
    | { Path.hops = _ :: (sw, port) :: _; _ } :: _ -> { sw; port }
    | _ -> Alcotest.fail "no cached spine path"
  in
  Alcotest.(check bool) "initially used" true
    (List.exists (crosses slow) (Host.Pathtable.paths_to table ~dst:victim));
  Alcotest.(check bool) "demotion hits at least one destination" true
    (Host.Agent.demote_link agent slow > 0);
  Alcotest.(check bool) "paths dropped" true
    (not (List.exists (crosses slow) (Host.Pathtable.paths_to table ~dst:victim)));
  Host.Agent.promote_link agent slow;
  Alcotest.(check bool) "paths restored" true
    (List.exists (crosses slow) (Host.Pathtable.paths_to table ~dst:victim))

let () =
  Alcotest.run "telemetry"
    [
      ( "stamp",
        [
          Alcotest.test_case "roundtrip" `Quick test_stamp_roundtrip;
          Alcotest.test_case "bad port rejected" `Quick test_stamp_rejects_bad_port;
          Alcotest.test_case "truncation rejected" `Quick test_stamp_rejects_truncation;
        ] );
      ( "frame region",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_int_roundtrip;
          Alcotest.test_case "flag required" `Quick test_add_stamp_requires_flag;
          Alcotest.test_case "saturates at cap" `Quick test_add_stamp_saturates;
          Alcotest.test_case "oversize count rejected" `Quick test_frame_rejects_oversize_count;
          Alcotest.test_case "region overrun rejected" `Quick test_frame_rejects_region_past_end;
          Alcotest.test_case "int-probe payload" `Quick test_int_probe_payload_roundtrip;
        ] );
      ( "dataplane",
        [
          Alcotest.test_case "stamps on pop" `Quick test_dataplane_stamps_on_pop;
          Alcotest.test_case "skips unflagged" `Quick test_dataplane_skips_unflagged;
        ] );
      ( "collector",
        [
          Alcotest.test_case "ewma convergence" `Quick test_collector_ewma_convergence;
          Alcotest.test_case "latency from pairs" `Quick test_collector_latency_from_stamp_pairs;
          Alcotest.test_case "losses" `Quick test_collector_losses;
          Alcotest.test_case "health flags losses" `Quick test_health_flags_losses;
        ] );
      ( "integration",
        [
          Alcotest.test_case "loop probes return" `Quick test_prober_loops_return;
          Alcotest.test_case "gray failure evicted" `Quick test_gray_failure_evicted;
          Alcotest.test_case "demote/promote" `Quick test_demote_promote_roundtrip;
        ] );
    ]
