(* Tests for the control plane: probe semantics (against the paper's
   worked examples), BFS discovery, event dedup, the topology store and
   the replicated log. *)

open Dumbnet.Topology
open Dumbnet.Topology.Types
open Dumbnet.Packet
module Probe_walk = Dumbnet.Control.Probe_walk
module Discovery = Dumbnet.Control.Discovery
module Event_dedup = Dumbnet.Control.Event_dedup
module Topo_store = Dumbnet.Control.Topo_store
module Replica = Dumbnet.Control.Replica
module Rng = Dumbnet.Util.Rng

let check = Alcotest.check

(* Figure 1 ids: S1..S5 = 0..4, H1..H5 = 0..4, C3 = 5 at S3-9. *)
let fig1 () = Builder.figure1 ()

let tags ports = List.map Tag.forward ports @ [ Tag.End_of_path ]

(* --- probe_walk: the paper's §4.1 worked examples, literally --- *)

let test_probe_bounce () =
  let b = fig1 () in
  (* "As the PM 9-ø bounces back, C3 learns that it connects to port 9". *)
  Alcotest.(check bool) "9-ø bounces" true
    (Probe_walk.probe b.Builder.graph ~origin:5 ~tags:(tags [ 9 ]) = Probe_walk.Bounced);
  (* Probing a port with nothing behind it loses the packet. *)
  Alcotest.(check bool) "4-ø lost" true
    (Probe_walk.probe b.Builder.graph ~origin:5 ~tags:(tags [ 4 ]) = Probe_walk.Lost)

let test_probe_id_query () =
  let b = fig1 () in
  (* "C3 then queries the switch ID ... 0-9-ø": replies S3 (our id 2). *)
  Alcotest.(check bool) "0-9-ø names S3" true
    (Probe_walk.probe b.Builder.graph ~origin:5 ~tags:(Tag.Id_query :: tags [ 9 ])
    = Probe_walk.Switch_id 2)

let test_probe_host_reply () =
  let b = fig1 () in
  (* "C3 will receive a response from H3 for PM 5-9-ø". H3 = our 2. *)
  (match Probe_walk.probe b.Builder.graph ~origin:5 ~tags:(tags [ 5; 9 ]) with
  | Probe_walk.Host_reply { responder; _ } -> check Alcotest.int "H3 replies" 2 responder
  | _ -> Alcotest.fail "expected host reply");
  (* "... and a response from H1 for 1-5-1-9-ø". H1 = our 0. *)
  match Probe_walk.probe b.Builder.graph ~origin:5 ~tags:(tags [ 1; 5; 1; 9 ]) with
  | Probe_walk.Host_reply { responder; _ } -> check Alcotest.int "H1 replies" 0 responder
  | _ -> Alcotest.fail "expected host reply"

let test_probe_neighbor_id () =
  let b = fig1 () in
  (* "Once C3 receives 1-0-1-9-ø back, it discovers S1": the ID query
     is answered by the switch behind S3's port 1 and returns via its
     port 1. S1 = our 0. *)
  Alcotest.(check bool) "1-0-1-9-ø names S1" true
    (Probe_walk.probe b.Builder.graph ~origin:5
       ~tags:[ Tag.forward 1; Tag.Id_query; Tag.forward 1; Tag.forward 9; Tag.End_of_path ]
    = Probe_walk.Switch_id 0)

let test_probe_verification () =
  let b = fig1 () in
  (* The ambiguity-resolution probe "1-2-1-0-1-9-ø" must name S1 (the
     switch reached back through the candidate reverse port). *)
  Alcotest.(check bool) "verify names S1" true
    (Probe_walk.probe b.Builder.graph ~origin:5
       ~tags:
         [ Tag.forward 1; Tag.forward 2; Tag.forward 1; Tag.Id_query; Tag.forward 1;
           Tag.forward 9; Tag.End_of_path ]
    = Probe_walk.Switch_id 0)

let test_probe_controller_hint () =
  let b = fig1 () in
  let controller_of h = if h = 2 then Some 5 else None in
  match
    Probe_walk.probe ~controller_of b.Builder.graph ~origin:0 ~tags:(tags [ 1; 5; 1; 5 ])
  with
  | Probe_walk.Host_reply { knows_controller; _ } ->
    Alcotest.(check bool) "hint forwarded" true (knows_controller = Some 5)
  | r ->
    Alcotest.failf "expected host reply, got %s"
      (match r with
      | Probe_walk.Bounced -> "bounce"
      | Probe_walk.Lost -> "lost"
      | Probe_walk.Switch_id _ -> "switch id"
      | Probe_walk.Host_reply _ -> "reply")

let test_probe_dead_link () =
  let b = fig1 () in
  Graph.set_link_state b.Builder.graph { sw = 2; port = 1 } ~up:false;
  Alcotest.(check bool) "probe dies on dead link" true
    (Probe_walk.probe b.Builder.graph ~origin:5 ~tags:(tags [ 1; 1; 9 ]) = Probe_walk.Lost)

(* --- discovery --- *)

let discover ?verify ?stop_at_controller built ~max_ports =
  let g = built.Builder.graph in
  let origin = built.Builder.controller in
  Discovery.run ?verify ?stop_at_controller
    ~prober:(fun tags -> Probe_walk.probe g ~origin ~tags)
    ~origin ~max_ports ()

let test_discovery_exact_on_builders () =
  List.iter
    (fun (name, built, ports) ->
      match discover built ~max_ports:ports with
      | Some r ->
        Alcotest.(check bool) (name ^ " exact") true
          (Graph.equal r.Discovery.topology built.Builder.graph)
      | None -> Alcotest.failf "%s: discovery failed" name)
    [
      ("figure1", Builder.figure1 (), 10);
      ("testbed", Builder.testbed (), 64);
      ("fat-tree", Builder.fat_tree ~k:4 (), 4);
      ("cube", Builder.cube ~n:3 ~controller_at:`Corner (), 7);
      ("linear", Builder.linear ~n:6 (), 4);
      ( "random",
        Builder.random_regular ~rng:(Rng.create 5) ~switches:10 ~degree:3 ~hosts_per_switch:2
          (),
        5 );
      ("star", Builder.star ~leaves:5 ~hosts_per_leaf:2 (), 5);
    ]

let test_discovery_verify_always_matches () =
  let built = Builder.testbed () in
  match (discover built ~max_ports:64, discover ~verify:`Always built ~max_ports:64) with
  | Some a, Some b ->
    Alcotest.(check bool) "same topology" true
      (Graph.equal a.Discovery.topology b.Discovery.topology);
    Alcotest.(check bool) "always-verify costs more probes" true
      (b.Discovery.stats.probes_sent >= a.Discovery.stats.probes_sent)
  | _ -> Alcotest.fail "discovery failed"

let test_discovery_counts () =
  let built = Builder.testbed () in
  match discover built ~max_ports:64 with
  | Some r ->
    check Alcotest.int "switches" 7 r.Discovery.stats.switches_found;
    check Alcotest.int "links" 10 r.Discovery.stats.links_found;
    check Alcotest.int "hosts (sans controller)" 26 r.Discovery.stats.hosts_found;
    (* O(N*P^2) with N=7, P=64: within a small factor of 7*4096. *)
    Alcotest.(check bool) "PM count in the expected band" true
      (r.Discovery.stats.probes_sent > 7 * 64 && r.Discovery.stats.probes_sent < 3 * 7 * 64 * 64)
  | None -> Alcotest.fail "discovery failed"

let test_discovery_stops_at_controller () =
  let built = Builder.testbed () in
  let g = built.Builder.graph in
  let origin = List.nth built.Builder.hosts 10 in
  let controller_of h = if h = built.Builder.controller then None else Some built.Builder.controller in
  (* Every *other* host knows the controller, so the prober passes the
     hint back; the searching host can stop early. *)
  match
    Discovery.run ~stop_at_controller:true
      ~prober:(fun tags -> Probe_walk.probe ~controller_of g ~origin ~tags)
      ~origin ~max_ports:64 ()
  with
  | Some r ->
    Alcotest.(check bool) "found the controller" true
      (r.Discovery.controller_hint = Some built.Builder.controller);
    Alcotest.(check bool) "far fewer probes than full discovery" true
      (r.Discovery.stats.probes_sent < 26196)
  | None -> Alcotest.fail "discovery failed"

let test_discovery_detached_origin () =
  let built = Builder.testbed () in
  let g = built.Builder.graph in
  (match Graph.host_location g built.Builder.controller with
  | Some le -> Graph.set_link_state g le ~up:false
  | None -> Alcotest.fail "controller detached already");
  Alcotest.(check bool) "no result" true (discover built ~max_ports:64 = None)

let test_verify_with_prior_drops_stale () =
  let built = Builder.testbed () in
  let g = built.Builder.graph in
  let stale = Graph.copy g in
  (* The prior believes in a link that no longer exists. *)
  Graph.remove_link g { sw = 2; port = 2 };
  let origin = built.Builder.controller in
  match
    Discovery.verify_with_prior
      ~prober:(fun tags -> Probe_walk.probe g ~origin ~tags)
      ~origin ~expected:stale
  with
  | Some r ->
    Alcotest.(check bool) "stale link not believed" true
      (Graph.equal r.Discovery.topology g);
    check Alcotest.int "links" 9 r.Discovery.stats.links_found
  | None -> Alcotest.fail "verification failed"

(* --- event dedup --- *)

let test_event_dedup () =
  let d = Event_dedup.create () in
  let e seq = { Payload.position = { sw = 1; port = 2 }; up = false; event_seq = seq } in
  Alcotest.(check bool) "first is fresh" true (Event_dedup.fresh d (e 1));
  Alcotest.(check bool) "replay dropped" false (Event_dedup.fresh d (e 1));
  Alcotest.(check bool) "stale dropped" false (Event_dedup.fresh d (e 0));
  Alcotest.(check bool) "newer is fresh" true (Event_dedup.fresh d (e 2));
  Alcotest.(check bool) "other port independent" true
    (Event_dedup.fresh d { Payload.position = { sw = 1; port = 3 }; up = false; event_seq = 1 });
  check Alcotest.int "seen" 5 (Event_dedup.seen d);
  check Alcotest.int "duplicates" 2 (Event_dedup.duplicates d)

(* --- topo store --- *)

let test_store_apply_and_patch () =
  let b = Builder.testbed () in
  let store = Topo_store.create b.Builder.graph in
  let e seq up = { Payload.position = { sw = 2; port = 1 }; up; event_seq = seq } in
  Alcotest.(check bool) "down applied" true (Topo_store.apply_event store (e 1 false) = Topo_store.Applied);
  Alcotest.(check bool) "store sees it down" false
    (Graph.link_up (Topo_store.graph store) { sw = 2; port = 1 });
  Alcotest.(check bool) "duplicate ignored" true
    (Topo_store.apply_event store (e 1 false) = Topo_store.Ignored);
  (match Topo_store.take_patch store with
  | Some (Payload.Topo_patch { version; changes }) ->
    check Alcotest.int "version bumped" 1 version;
    check Alcotest.int "one change" 1 (List.length changes)
  | _ -> Alcotest.fail "expected a patch");
  Alcotest.(check bool) "patch drained" true (Topo_store.take_patch store = None);
  Alcotest.(check bool) "restore applied" true
    (Topo_store.apply_event store (e 2 true) = Topo_store.Applied);
  Alcotest.(check bool) "up again" true
    (Graph.link_up (Topo_store.graph store) { sw = 2; port = 1 })

let test_store_needs_probe () =
  let b = Builder.testbed () in
  let store = Topo_store.create b.Builder.graph in
  (* Port-up on a port the store has no cable for. *)
  let e = { Payload.position = { sw = 2; port = 60 }; up = true; event_seq = 1 } in
  (match Topo_store.apply_event store e with
  | Topo_store.Needs_probe le -> Alcotest.(check bool) "position" true (le = { sw = 2; port = 60 })
  | _ -> Alcotest.fail "expected needs-probe");
  Topo_store.record_discovered_link store { sw = 2; port = 60 } { sw = 0; port = 60 };
  match Topo_store.take_patch store with
  | Some (Payload.Topo_patch { changes = [ Payload.Link_discovered _ ]; _ }) -> ()
  | _ -> Alcotest.fail "expected discovery patch"

let test_store_patch_replay () =
  let b = Builder.testbed () in
  let store = Topo_store.create b.Builder.graph in
  let copy = Graph.copy b.Builder.graph in
  ignore (Topo_store.apply_event store
            { Payload.position = { sw = 2; port = 1 }; up = false; event_seq = 1 });
  (match Topo_store.take_patch store with
  | Some (Payload.Topo_patch { changes; _ }) ->
    Topo_store.apply_patch copy changes;
    Alcotest.(check bool) "replica caught up" true (Graph.equal copy (Topo_store.graph store))
  | _ -> Alcotest.fail "expected patch");
  Alcotest.(check bool) "serves path graphs" true
    (Topo_store.serve_path_graph store ~src:0 ~dst:20 <> None)

(* --- memoized routing: the distance cache must be invisible --- *)

(* [serve_path_graph] answers through the store's memoized per-switch
   BFS tables; a fresh [Pathgraph.generate] (no [~dist]) re-runs BFS
   per query. Their wire forms must match exactly for every host pair —
   through failures, restores and newly discovered cables — or the
   cache is serving stale routes. Both sides get the same rng seed so
   tie-breaks can't differ for non-cache reasons. *)
let check_memoized_matches_fresh ~label store =
  let g = Topo_store.graph store in
  let hosts = Graph.host_ids g in
  let wire = Option.map Pathgraph.to_wire in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then
            let served = Topo_store.serve_path_graph ~rng:(Rng.create 42) store ~src ~dst in
            let fresh = Pathgraph.generate ~rng:(Rng.create 42) g ~src ~dst in
            Alcotest.(check bool)
              (Printf.sprintf "%s: %d->%d" label src dst)
              true
              (wire served = wire fresh))
        hosts)
    hosts

let test_store_memoized_fail_restore () =
  let b = Builder.fat_tree ~k:4 () in
  let store = Topo_store.create b.Builder.graph in
  let g = Topo_store.graph store in
  check_memoized_matches_fresh ~label:"initial" store;
  let hits, misses = Topo_store.dist_cache_stats store in
  Alcotest.(check bool) "repeat queries hit the cache" true (hits > 0);
  Alcotest.(check bool) "one miss per distinct switch" true
    (misses <= Graph.num_switches g);
  (* Fail a switch-to-switch link via the same event path the
     controller uses for failure notices, then restore it. *)
  let key, _ = List.hd (Graph.switch_links g) in
  let le, _ = Link_key.ends key in
  (match Topo_store.apply_event store { Payload.position = le; up = false; event_seq = 1 } with
  | Topo_store.Applied -> ()
  | _ -> Alcotest.fail "failure event should apply");
  check_memoized_matches_fresh ~label:"after fail" store;
  (match Topo_store.apply_event store { Payload.position = le; up = true; event_seq = 2 } with
  | Topo_store.Applied -> ()
  | _ -> Alcotest.fail "restore event should apply");
  check_memoized_matches_fresh ~label:"after restore" store;
  (* Explicit invalidation is allowed any time and changes nothing. *)
  Topo_store.invalidate_dist_cache store;
  check_memoized_matches_fresh ~label:"after invalidate" store

let test_store_memoized_discovery () =
  let b = fig1 () in
  let store = Topo_store.create b.Builder.graph in
  let g = Topo_store.graph store in
  check_memoized_matches_fresh ~label:"pre-discovery" store;
  (* Cable up two previously free ports through the store, as probe
     discovery would, and make sure the cache notices the new edge. *)
  let free_port sw =
    let rec go p =
      if p > Graph.ports_of g sw then None
      else if Graph.endpoint_at g { sw; port = p } = None then Some { sw; port = p }
      else go (p + 1)
    in
    go 1
  in
  let frees = List.filter_map free_port (Graph.switch_ids g) in
  (match frees with
  | a :: rest -> (
    match List.find_opt (fun e -> e.sw <> a.sw) rest with
    | Some b_end ->
      Topo_store.record_discovered_link store a b_end;
      Alcotest.(check bool) "patch pending" true (Topo_store.take_patch store <> None)
    | None -> Alcotest.fail "fig1 should have free ports on two switches")
  | [] -> Alcotest.fail "fig1 should have free ports");
  check_memoized_matches_fresh ~label:"post-discovery" store

(* --- replica --- *)

let test_replica_commit_and_crash () =
  let r = Replica.create ~replicas:3 in
  Alcotest.(check bool) "leader is 0" true (Replica.leader r = Some 0);
  (match Replica.append r "a" with
  | `Committed 0 -> ()
  | _ -> Alcotest.fail "first commit at index 0");
  Replica.crash r 1;
  (match Replica.append r "b" with
  | `Committed 1 -> ()
  | _ -> Alcotest.fail "minority crash keeps quorum");
  Replica.crash r 2;
  Alcotest.(check bool) "no quorum" true (Replica.append r "c" = `No_quorum);
  check Alcotest.(list string) "committed survives" [ "a"; "b" ] (Replica.committed_log r)

let test_replica_recovery_catches_up () =
  let r = Replica.create ~replicas:3 in
  ignore (Replica.append r 1);
  Replica.crash r 2;
  ignore (Replica.append r 2);
  ignore (Replica.append r 3);
  check Alcotest.(list int) "lagging replica" [ 1 ] (Replica.replica_log r 2);
  Replica.recover r 2;
  check Alcotest.(list int) "caught up" [ 1; 2; 3 ] (Replica.replica_log r 2);
  (* Every alive replica agrees with the committed log. *)
  List.iter
    (fun i ->
      check Alcotest.(list int) "agreement" (Replica.committed_log r) (Replica.replica_log r i))
    (Replica.alive r)

let test_replica_leader_failover () =
  let r = Replica.create ~replicas:5 in
  Replica.crash r 0;
  Alcotest.(check bool) "next leader" true (Replica.leader r = Some 1);
  ignore (Replica.append r "x");
  Replica.recover r 0;
  Alcotest.(check bool) "lowest id leads again" true (Replica.leader r = Some 0);
  check Alcotest.(list string) "recovered leader has the log" [ "x" ] (Replica.replica_log r 0)

let test_replica_rejects_even () =
  Alcotest.(check bool) "even ensemble rejected" true
    (try
       ignore (Replica.create ~replicas:4);
       false
     with Invalid_argument _ -> true)

let replica_consistency_prop =
  (* Under any crash/recover/append schedule, alive replicas' logs equal
     the committed log (we model synchronous replication). *)
  QCheck.Test.make ~name:"replica logs match committed log" ~count:100
    QCheck.(list (pair (int_bound 2) (int_bound 4)))
    (fun script ->
      let r = Replica.create ~replicas:5 in
      let n = ref 0 in
      List.iter
        (fun (op, arg) ->
          match op with
          | 0 ->
            incr n;
            ignore (Replica.append r !n)
          | 1 -> Replica.crash r arg
          | _ -> Replica.recover r arg)
        script;
      List.for_all (fun i -> Replica.replica_log r i = Replica.committed_log r) (Replica.alive r))

let () =
  Alcotest.run "control"
    [
      ( "probe_walk (paper §4.1 examples)",
        [
          Alcotest.test_case "bounce 9-ø" `Quick test_probe_bounce;
          Alcotest.test_case "id query 0-9-ø" `Quick test_probe_id_query;
          Alcotest.test_case "host replies" `Quick test_probe_host_reply;
          Alcotest.test_case "neighbor id 1-0-1-9-ø" `Quick test_probe_neighbor_id;
          Alcotest.test_case "verification 1-2-1-0-1-9-ø" `Quick test_probe_verification;
          Alcotest.test_case "controller hint" `Quick test_probe_controller_hint;
          Alcotest.test_case "dead link" `Quick test_probe_dead_link;
        ] );
      ( "discovery",
        [
          Alcotest.test_case "exact on all builders" `Quick test_discovery_exact_on_builders;
          Alcotest.test_case "verify modes agree" `Quick test_discovery_verify_always_matches;
          Alcotest.test_case "testbed counts" `Quick test_discovery_counts;
          Alcotest.test_case "stops at controller" `Quick test_discovery_stops_at_controller;
          Alcotest.test_case "detached origin" `Quick test_discovery_detached_origin;
          Alcotest.test_case "prior drops stale links" `Quick test_verify_with_prior_drops_stale;
        ] );
      ("dedup", [ Alcotest.test_case "sequence windows" `Quick test_event_dedup ]);
      ( "topo_store",
        [
          Alcotest.test_case "apply and patch" `Quick test_store_apply_and_patch;
          Alcotest.test_case "needs probe" `Quick test_store_needs_probe;
          Alcotest.test_case "patch replay" `Quick test_store_patch_replay;
          Alcotest.test_case "memoized = fresh across fail/restore" `Quick
            test_store_memoized_fail_restore;
          Alcotest.test_case "memoized = fresh across discovery" `Quick
            test_store_memoized_discovery;
        ] );
      ( "replica",
        [
          Alcotest.test_case "commit and crash" `Quick test_replica_commit_and_crash;
          Alcotest.test_case "recovery" `Quick test_replica_recovery_catches_up;
          Alcotest.test_case "leader failover" `Quick test_replica_leader_failover;
          Alcotest.test_case "even rejected" `Quick test_replica_rejects_even;
          QCheck_alcotest.to_alcotest replica_consistency_prop;
        ] );
    ]
