(* Tests for the adversity suite: the probe-program codec and its
   frame region, the switch-side per-hop interpreter, the suspect-set
   accounting, and end-to-end localization of hidden forwarding-plane
   faults (silent drops, miswired cables) on fat-tree and jellyfish
   fabrics — including the gray-failure hand-off from the health
   monitor to the diagnosis engine. *)

open Dumbnet.Packet
open Dumbnet.Topology
open Dumbnet.Topology.Types
module Dataplane = Dumbnet.Switch.Dataplane
module Network = Dumbnet.Sim.Network
module Fabric = Dumbnet.Fabric
module Agent = Dumbnet.Host.Agent
module Topocache = Dumbnet.Host.Topocache
module Endpoint = Dumbnet.Telemetry.Endpoint
module Prober = Dumbnet.Telemetry.Prober
module Health = Dumbnet.Telemetry.Health
module Localizer = Dumbnet.Diagnosis.Localizer
module Suspects = Dumbnet.Diagnosis.Suspects
module Rng = Dumbnet.Util.Rng

let check = Alcotest.check

(* --- probe-program codec --- *)

let rich_prog () =
  Probe_prog.of_instrs
    [
      Probe_prog.stamp_all;
      {
        Probe_prog.pred =
          { Probe_prog.m_switch = Some 9; m_port = Some 3; min_queue = 4096; after_hops = 2 };
        op = Probe_prog.Stamp;
      };
      Probe_prog.mirror ~pred:(Probe_prog.at_hop 3) [ 4; 7; 1 ];
      Probe_prog.bounce [ 254 ];
      Probe_prog.bounce ~pred:{ Probe_prog.any with Probe_prog.min_queue = 1 } [];
    ]

let roundtrip prog =
  let w = Wire.Writer.create () in
  Probe_prog.write w prog;
  let b = Wire.Writer.contents w in
  check Alcotest.int "wire_size exact" (Probe_prog.wire_size prog) (Bytes.length b);
  let r = Wire.Reader.of_bytes b in
  let prog' = Probe_prog.read r in
  Alcotest.(check bool) "roundtrip" true (Probe_prog.equal prog prog')

let test_prog_roundtrip () =
  roundtrip (rich_prog ());
  roundtrip (Probe_prog.of_instrs [ Probe_prog.stamp_all ]);
  roundtrip (Probe_prog.of_instrs [ Probe_prog.bounce ~pred:(Probe_prog.at_hop 256) [] ])

let test_prog_rejects_truncation () =
  let w = Wire.Writer.create () in
  Probe_prog.write w (rich_prog ());
  let b = Wire.Writer.contents w in
  for cut = 0 to Bytes.length b - 1 do
    match Probe_prog.read (Wire.Reader.of_bytes (Bytes.sub b 0 cut)) with
    | _ -> Alcotest.failf "accepted a %d-byte prefix of %d" cut (Bytes.length b)
    | exception Wire.Truncated -> ()
  done

let test_prog_rejects_unknown_opcode () =
  let w = Wire.Writer.create () in
  Probe_prog.write w (Probe_prog.of_instrs [ Probe_prog.stamp_all ]) ;
  let b = Wire.Writer.contents w in
  Bytes.set b 1 '\x7f';
  (* count byte, then the first instruction's opcode *)
  Alcotest.(check bool) "unknown opcode rejected" true
    (try
       ignore (Probe_prog.read (Wire.Reader.of_bytes b));
       false
     with Wire.Truncated -> true)

let test_prog_constructor_limits () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty program" true (raises (fun () -> Probe_prog.of_instrs []));
  Alcotest.(check bool) "oversize program" true
    (raises (fun () ->
         Probe_prog.of_instrs
           (List.init (Probe_prog.max_instrs + 1) (fun _ -> Probe_prog.stamp_all))));
  Alcotest.(check bool) "oversize continuation" true
    (raises (fun () ->
         Probe_prog.bounce (List.init (Probe_prog.max_cont_tags + 1) (fun _ -> 1))));
  Alcotest.(check bool) "port 0 in continuation" true
    (raises (fun () -> Probe_prog.mirror [ 0 ]));
  Alcotest.(check bool) "at_hop 0" true (raises (fun () -> Probe_prog.at_hop 0))

(* --- frame region --- *)

let data_payload = Payload.Data { flow = 0; seq = 0; size = 100; sent_ns = 0 }

let prog_frame () =
  Frame.along_path ~src:1 ~dst:2 ~tags_of:[ 2; 5; 3 ] ~payload:data_payload
  |> Frame.with_int
  |> Frame.add_stamp { Int_stamp.switch = 4; port = 2; queue_depth = 100; timestamp_ns = 50 }
  |> Frame.with_prog (rich_prog ())

let test_frame_prog_roundtrip () =
  let f = prog_frame () in
  let f' = Frame.of_bytes (Frame.to_bytes f) in
  Alcotest.(check bool) "frame with program round-trips" true (Frame.equal f f');
  (match f'.Frame.prog with
  | Some p -> Alcotest.(check bool) "program intact" true (Probe_prog.equal p (rich_prog ()))
  | None -> Alcotest.fail "program region lost");
  let stripped = Frame.strip_prog f in
  Alcotest.(check bool) "strip removes the region" true
    (match (Frame.of_bytes (Frame.to_bytes stripped)).Frame.prog with
    | None -> true
    | Some _ -> false)

(* Bit-flip fuzz over the serialized frame: every single-byte
   corruption must either parse into some frame or raise [Truncated] —
   never any other exception, never a crash. *)
let test_frame_prog_corruption () =
  let b0 = Frame.to_bytes (prog_frame ()) in
  for i = 0 to Bytes.length b0 - 1 do
    let b = Bytes.copy b0 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xA5));
    match Frame.of_bytes b with
    | _ -> ()
    | exception Wire.Truncated -> ()
  done

(* --- the per-hop interpreter --- *)

let all_up _ = true

let observe ?(queue = 0) () p =
  { Int_stamp.switch = 7; port = p; queue_depth = queue; timestamp_ns = 42 }

let handle ?(num_ports = 8) ?(port_up = all_up) ?stamp ?(in_port = 2) frame =
  Dataplane.handle ~self:7 ~num_ports ~port_up ?stamp ~in_port frame

let tagged ?(tags = [ 3; 5 ]) prog =
  Frame.along_path ~src:0 ~dst:1 ~tags_of:tags ~payload:data_payload
  |> Frame.with_int
  |> Frame.with_prog prog

let test_conditional_stamp () =
  let prog =
    Probe_prog.of_instrs
      [ { Probe_prog.pred = { Probe_prog.any with Probe_prog.min_queue = 1000 }; op = Probe_prog.Stamp } ]
  in
  (match handle ~stamp:(observe ~queue:500 ()) (tagged prog) with
  | Dataplane.Forward (3, f') ->
    check Alcotest.int "below threshold: no stamp" 0 (List.length (Frame.int_stamps f'))
  | _ -> Alcotest.fail "expected forward");
  match handle ~stamp:(observe ~queue:2000 ()) (tagged prog) with
  | Dataplane.Forward (3, f') ->
    check Alcotest.int "above threshold: stamped" 1 (List.length (Frame.int_stamps f'));
    (match (Frame.int_stamps f') with
    | [ s ] -> check Alcotest.int "stamp observes the egress" 3 s.Int_stamp.port
    | _ -> Alcotest.fail "one stamp");
    (* The program never takes over the frame's INT arming. *)
    Alcotest.(check bool) "program persists" true
      (match f'.Frame.prog with
      | Some _ -> true
      | None -> false)
  | _ -> Alcotest.fail "expected forward"

let test_bounce_exits_ingress () =
  let prog = Probe_prog.of_instrs [ Probe_prog.stamp_all; Probe_prog.bounce [ 6; 1 ] ] in
  match handle ~stamp:(observe ()) ~in_port:4 (tagged prog) with
  | Dataplane.Forward (p, f') ->
    check Alcotest.int "exits the ingress" 4 p;
    Alcotest.(check bool) "continuation installed" true
      (f'.Frame.tags = [ Tag.forward 6; Tag.forward 1; Tag.End_of_path ]);
    (match (Frame.int_stamps f') with
    | [ s ] -> check Alcotest.int "stamp observes the turnaround port" 4 s.Int_stamp.port
    | _ -> Alcotest.fail "expected exactly the bounce stamp");
    (match f'.Frame.prog with
    | Some [ { Probe_prog.op = Probe_prog.Stamp; _ } ] -> ()
    | Some _ -> Alcotest.fail "fired bounce must be consumed"
    | None -> Alcotest.fail "surviving stamp must persist")
  | _ -> Alcotest.fail "expected forward"

let test_bounce_works_on_dead_egress () =
  (* The popped egress is down; a tableless switch would drop — but the
     bounce turns the frame around on its ingress, which is exactly how
     a probe reports on a dead cable from its near side. *)
  let prog = Probe_prog.of_instrs [ Probe_prog.bounce [] ] in
  match handle ~port_up:(fun p -> p <> 3) ~in_port:5 (tagged prog) with
  | Dataplane.Forward (5, f') ->
    Alcotest.(check bool) "empty continuation is just ø" true (f'.Frame.tags = [ Tag.End_of_path ])
  | _ -> Alcotest.fail "expected forward out the ingress"

let test_mirror_copies_and_continues () =
  let prog = Probe_prog.of_instrs [ Probe_prog.mirror [ 6 ] ] in
  match handle ~in_port:2 (tagged prog) with
  | Dataplane.Forward_many [ (p1, original); (p2, copy) ] ->
    check Alcotest.int "original continues on its egress" 3 p1;
    check Alcotest.int "copy exits the ingress" 2 p2;
    Alcotest.(check bool) "original keeps its route" true
      (original.Frame.tags = [ Tag.forward 5; Tag.End_of_path ]);
    Alcotest.(check bool) "fired mirror consumed from original" true
      (match original.Frame.prog with
      | None -> true
      | Some _ -> false);
    Alcotest.(check bool) "copy carries the continuation, no program" true
      (copy.Frame.tags = [ Tag.forward 6; Tag.End_of_path ]
      &&
      match copy.Frame.prog with
      | None -> true
      | Some _ -> false)
  | _ -> Alcotest.fail "expected a forward pair"

let test_after_hops_counts_down () =
  let prog = Probe_prog.of_instrs [ Probe_prog.bounce ~pred:(Probe_prog.at_hop 2) [] ] in
  (* Hop 1: not yet eligible — the frame forwards normally and the
     countdown ticks inside the forwarded program. *)
  match handle ~in_port:2 (tagged prog) with
  | Dataplane.Forward (3, f') -> (
    (match f'.Frame.prog with
    | Some [ { Probe_prog.pred = { Probe_prog.after_hops = 0; _ }; _ } ] -> ()
    | Some _ | None -> Alcotest.fail "countdown must tick to 0");
    (* Hop 2: now it fires. *)
    match handle ~in_port:1 f' with
    | Dataplane.Forward (1, _) -> ()
    | _ -> Alcotest.fail "expected the bounce at hop 2")
  | _ -> Alcotest.fail "expected plain forward at hop 1"

(* --- suspect accounting --- *)

let test_suspects_ranking () =
  let k a b = Link_key.make { sw = a; port = 1 } { sw = b; port = 1 } in
  let s = Suspects.create () in
  (* cable 0-1 on every probe; 1-2 only on the failing ones *)
  Suspects.observe s ~covered:[ k 0 1 ] ~ok:true;
  Suspects.observe s ~covered:[ k 0 1; k 1 2 ] ~ok:false;
  Suspects.observe s ~covered:[ k 0 1; k 1 2 ] ~ok:false;
  check Alcotest.int "two cables observed" 2 (Suspects.observed s);
  (match Suspects.top s with
  | Some r ->
    Alcotest.(check bool) "the always-failing cable ranks first" true
      (Link_key.compare r.Suspects.r_key (k 1 2) = 0);
    check Alcotest.int "its failures" 2 r.Suspects.r_fails
  | None -> Alcotest.fail "expected a ranking");
  match Suspects.consistent_culprits s with
  | [ r ] ->
    Alcotest.(check bool) "only 1-2 failed every covering probe" true
      (Link_key.compare r.Suspects.r_key (k 1 2) = 0)
  | rs -> Alcotest.failf "expected one consistent culprit, got %d" (List.length rs)

(* --- end-to-end localization --- *)

let observer_of built =
  match List.filter (fun h -> h <> built.Builder.controller) built.Builder.hosts with
  | h :: _ -> h
  | [] -> built.Builder.controller

(* A warmed fabric with a localizer attached to one observer host.
   [demote:false] keeps every trial starting from the same clean
   caches. *)
let diag_rig built =
  let fab = Fabric.create ~seed:7 built in
  let observer = observer_of built in
  let agent = Fabric.agent fab observer in
  List.iter
    (fun dst -> if dst <> observer then ignore (Agent.query_path agent ~dst))
    built.Builder.hosts;
  Fabric.run fab;
  let engine = Fabric.engine fab in
  let ep = Endpoint.attach ~probing:false ~watching:false ~engine ~agent () in
  let loc = Localizer.create ~demote:false ~engine ~agent ~prober:(Endpoint.prober ep) () in
  (fab, observer, agent, loc)

let legs_to cache dst =
  match Topocache.get cache ~dst with
  | None -> None
  | Some pg -> (
    let path = Pathgraph.primary pg in
    match Prober.path_legs ~adj:(Pathgraph.adjacency pg) path with
    | Some (_ :: _ as legs) -> Some legs
    | Some [] | None -> None)

let off_path_partner g rng legs =
  let on_path (le : link_end) =
    List.exists
      (fun (l : Prober.leg) ->
        (l.Prober.leg_from.sw = le.sw && l.Prober.leg_from.port = le.port)
        || (l.Prober.leg_to.sw = le.sw && l.Prober.leg_to.port = le.port))
      legs
  in
  let cs =
    List.filter_map
      (fun (key, up) ->
        if not up then None
        else
          let a, b = Link_key.ends key in
          if (not (on_path a)) && not (on_path b) then Some a else None)
      (Graph.switch_links g)
  in
  match cs with
  | [] -> None
  | _ :: _ -> Some (List.nth cs (Rng.int rng (List.length cs)))

(* One hidden-fault trial: inject, diagnose, undo; [true] iff the
   verdict names exactly the faulted cable with the right class, within
   [max_batches] batches. *)
let localize_once fab loc ~miswire rng dst legs =
  let net = Fabric.network fab in
  let g = Network.graph net in
  let leg = List.nth legs (Rng.int rng (List.length legs)) in
  let target = Link_key.make leg.Prober.leg_from leg.Prober.leg_to in
  let partner = if miswire then off_path_partner g rng legs else None in
  let undo =
    match partner with
    | Some p ->
      Network.rewire_swap net leg.Prober.leg_from p;
      fun () -> Network.rewire_swap net leg.Prober.leg_from p
    | None ->
      Network.set_cable_fault net leg.Prober.leg_from (Some Network.Silent_drop);
      fun () -> Network.clear_faults net
  in
  let got = ref None in
  let launched = Localizer.diagnose loc ~dst ~on_done:(fun v -> got := Some v) in
  if launched then Fabric.run ~for_ns:200_000_000 fab;
  undo ();
  match !got with
  | None -> false
  | Some v -> (
    v.Localizer.v_batches <= 3
    &&
    match (v.Localizer.v_class, partner) with
    | Localizer.Silent_drop { near; far }, None ->
      Link_key.compare (Link_key.make near far) target = 0
    | Localizer.Miswired { near; far; actual; _ }, Some _ ->
      Link_key.compare (Link_key.make near far) target = 0
      (* the impostor the stamp reads must be the partner's true far
         side — i.e. not the switch we expected *)
      && actual <> leg.Prober.leg_to.sw
    | (Localizer.Silent_drop _ | Localizer.Miswired _ | Localizer.Healthy
      | Localizer.Degraded _ | Localizer.Inconclusive), _ ->
      false)

let localization_prop name built =
  let rig = lazy (diag_rig built) in
  QCheck.Test.make ~name ~count:12
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let fab, observer, agent, loc = Lazy.force rig in
      let rng = Rng.create (seed + 1) in
      let cache = Agent.topocache agent in
      let dsts =
        List.filter_map
          (fun d ->
            if d = observer then None
            else Option.map (fun legs -> (d, legs)) (legs_to cache d))
          built.Builder.hosts
      in
      match dsts with
      | [] -> QCheck.Test.fail_report "no multi-leg destinations cached"
      | _ :: _ ->
        let dst, legs = List.nth dsts (Rng.int rng (List.length dsts)) in
        let miswire = Rng.int rng 2 = 0 in
        localize_once fab loc ~miswire rng dst legs)

let fat_tree_prop = localization_prop "fat-tree k=4: hidden fault -> exact cable" (Builder.fat_tree ~k:4 ())

let jellyfish_prop =
  localization_prop "jellyfish-16: hidden fault -> exact cable"
    (Builder.random_regular ~rng:(Rng.create 5) ~switches:16 ~degree:5 ~hosts_per_switch:1 ())

(* The paper-scale smoke: one silent drop each on k=8 fat tree and
   64-switch jellyfish, localized to exactly the faulted cable. *)
let test_large_topology_smoke () =
  List.iter
    (fun built ->
      let fab, observer, agent, loc = diag_rig built in
      ignore observer;
      let rng = Rng.create 3 in
      let cache = Agent.topocache agent in
      let dst =
        List.find_opt (fun d -> d <> observer_of built && legs_to cache d <> None) built.Builder.hosts
      in
      match dst with
      | None -> Alcotest.fail "no cached destination"
      | Some dst ->
        (match legs_to cache dst with
        | None -> Alcotest.fail "no legs"
        | Some legs ->
          Alcotest.(check bool) "silent drop localized exactly" true
            (localize_once fab loc ~miswire:false rng dst legs)))
    [
      Builder.fat_tree ~k:8 ();
      Builder.random_regular ~rng:(Rng.create 23) ~switches:64 ~degree:6 ~hosts_per_switch:1 ();
    ]

(* --- health monitor hand-off --- *)

let test_health_handoff () =
  (* A corrupting cable on the observer's paths: loop probes start
     vanishing, the collector charges losses, the health monitor flags
     suspects, and the subscribed localizer turns one of them into an
     exact cable verdict — no human in the loop. *)
  let built = Builder.fat_tree ~k:4 () in
  let fab = Fabric.create ~seed:7 built in
  let observer = observer_of built in
  let agent = Fabric.agent fab observer in
  List.iter
    (fun dst -> if dst <> observer then ignore (Agent.query_path agent ~dst))
    built.Builder.hosts;
  Fabric.run fab;
  let engine = Fabric.engine fab in
  let ep = Endpoint.attach ~probe_interval_ns:20_000 ~engine ~agent () in
  let loc =
    Localizer.create ~engine ~agent ~prober:(Endpoint.prober ep) ()
  in
  Localizer.attach_health loc (Endpoint.health ep);
  (* Fault a cable on the observer's primary path to some destination. *)
  let cache = Agent.topocache agent in
  let target =
    let rec first = function
      | [] -> Alcotest.fail "no multi-leg destination"
      | d :: rest -> (
        if d = observer then first rest
        else
          match legs_to cache d with
          | Some (leg :: _) -> Link_key.make leg.Prober.leg_from leg.Prober.leg_to
          | Some [] | None -> first rest)
    in
    first built.Builder.hosts
  in
  let a, _ = Link_key.ends target in
  Network.set_cable_fault (Fabric.network fab) a (Some (Network.Corrupting { rate = 1.0; seed = 3 }));
  Fabric.run ~for_ns:400_000_000 fab;
  let hits =
    List.filter
      (fun v ->
        match v.Localizer.v_class with
        | Localizer.Silent_drop { near; far } | Localizer.Degraded { near; far; _ } ->
          Link_key.compare (Link_key.make near far) target = 0
        | Localizer.Miswired _ | Localizer.Healthy | Localizer.Inconclusive -> false)
      (Localizer.verdicts loc)
  in
  Alcotest.(check bool) "health suspects reached the localizer" true
    (Health.suspects (Endpoint.health ep) <> []);
  Alcotest.(check bool) "some verdict names the faulted cable" true (hits <> [])

let () =
  Alcotest.run "diagnosis"
    [
      ( "probe programs",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_prog_roundtrip;
          Alcotest.test_case "truncation rejected" `Quick test_prog_rejects_truncation;
          Alcotest.test_case "unknown opcode rejected" `Quick test_prog_rejects_unknown_opcode;
          Alcotest.test_case "constructor limits" `Quick test_prog_constructor_limits;
          Alcotest.test_case "frame region roundtrip" `Quick test_frame_prog_roundtrip;
          Alcotest.test_case "corruption fuzz" `Quick test_frame_prog_corruption;
        ] );
      ( "interpreter",
        [
          Alcotest.test_case "conditional stamp" `Quick test_conditional_stamp;
          Alcotest.test_case "bounce exits ingress" `Quick test_bounce_exits_ingress;
          Alcotest.test_case "bounce on dead egress" `Quick test_bounce_works_on_dead_egress;
          Alcotest.test_case "mirror copies, original continues" `Quick
            test_mirror_copies_and_continues;
          Alcotest.test_case "after_hops countdown" `Quick test_after_hops_counts_down;
        ] );
      ( "localization",
        [
          Alcotest.test_case "suspect ranking" `Quick test_suspects_ranking;
          QCheck_alcotest.to_alcotest fat_tree_prop;
          QCheck_alcotest.to_alcotest jellyfish_prop;
          Alcotest.test_case "k=8 and jellyfish-64 smoke" `Slow test_large_topology_smoke;
          Alcotest.test_case "health monitor hand-off" `Quick test_health_handoff;
        ] );
    ]
