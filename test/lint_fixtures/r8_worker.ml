(* Fixture: R8 worker module — a Pool.run_chunks callback reaching the
   R8_state slots only transitively, through a helper in this module.
   The unguarded ref is a race; the Atomic and the waived ref are not. *)

let record n =
  R8_state.bump_total n;
  R8_state.bump_processed ();
  R8_state.bump_debug ()

let audit () = R8_state.read_total ()

let run pool input =
  Pool.run_chunks pool ~n:(Array.length input) (fun ~worker:_ ~lo ~hi ->
      for i = lo to hi - 1 do
        record input.(i)
      done;
      audit ())
