(* Fixture: R10 — the raising leaf, two modules away from the engine
   callback that eventually reaches it. *)

let boom () = failwith "r10 fixture helper"
