(* R7 fixture: a reasoned escape hatch. *)

let watchdog =
  (Domain.spawn (fun () -> ()) [@dumbnet.domain "one-shot watchdog, joined at exit"])
