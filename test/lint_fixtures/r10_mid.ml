(* Fixture: R10 — the relay between the engine callback and the raising
   helper. Contains no raise of its own; the escape is inherited. *)

let step () = R10_helper.boom ()
