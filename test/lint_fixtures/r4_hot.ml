(* Fixture: R4 — allocation advisories fire inside [@dumbnet.hot]
   functions only; the same constructs in a cold function are fine. *)

let[@dumbnet.hot] advisories xs ys =
  let merged = xs @ ys in
  let doubled = List.map (fun x -> x * 2) merged in
  let out = ref [] in
  for i = 0 to 3 do
    out := (fun () -> i) :: !out
  done;
  (doubled, !out)

let cold xs ys = List.map (fun x -> x * 2) (xs @ ys)
