(* Fixture: R9 — hotness propagates from the [@dumbnet.hot] root down
   the call chain; [cold] is unreachable from it and stays unflagged. *)

let leaf x = x * 2

let mid x = leaf (x + 1)

let[@dumbnet.hot] dispatch x = mid x

let cold x = x - 1
