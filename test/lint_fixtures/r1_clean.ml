(* Fixture: R1 negative — total lookups only; the lint stays silent. *)

let lookup tbl key = Hashtbl.find_opt tbl key

let first = function
  | [] -> None
  | x :: _ -> Some x

let nth xs i = List.nth_opt xs i
