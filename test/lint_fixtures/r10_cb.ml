(* Fixture: R10 — an engine callback whose raise arrives only through
   its callees. The syntactic R3 sees no raise here at all; the
   interprocedural pass must flag [armed] and accept [guarded]. *)

let armed engine = Engine.schedule_at engine ~at_ns:0 (fun () -> R10_mid.step ())

let guarded engine =
  Engine.schedule_at engine ~at_ns:0 (fun () ->
      try R10_mid.step () with Failure _ -> ())
