(* Fixture: R1 waived — the waiver carries a reason and suppresses
   exactly one finding, so it is legal under W1. *)

let[@dumbnet.partial "fixture: the key is inserted two lines above"] lookup tbl key =
  Hashtbl.find tbl key
