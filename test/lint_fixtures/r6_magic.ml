(* Fixture: R6 — Obj.magic and ignored result-returning calls. The
   ignored unit-ish call at the end is the negative case. *)

let coerce x = Obj.magic x

let fire () = ignore (send_result ())

let ok () = ignore (List.length [])
