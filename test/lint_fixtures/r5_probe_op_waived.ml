(* Fixture: R5 waived for a probe opcode — same waiver attribute as the
   EtherTypes, reason required. *)

let[@dumbnet.wire_const "fixture: replaying a capture whose generator hardcoded the opcode"] foreign_mirror
    =
  0xa2
