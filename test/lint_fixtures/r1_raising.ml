(* Fixture: R1 positive — raising lookups in a hot-path file.
   Parsed by dumbnet-lint only, never compiled. *)

let lookup tbl key = Hashtbl.find tbl key

let first xs = List.hd xs

let force o = Option.get o
