(* Fixture: W1 — waiver hygiene. The first waiver suppresses nothing;
   the second suppresses a real finding but has no reason. Both are
   errors: waivers must be load-bearing and documented. *)

let[@dumbnet.partial "fixture: this waiver shields nothing"] fine tbl key =
  Hashtbl.find_opt tbl key

let[@dumbnet.partial] no_reason tbl key = Hashtbl.find tbl key
