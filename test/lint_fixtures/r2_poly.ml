(* Fixture: R2 positive — polymorphic comparison and hashing on
   frame/graph-sized structures, spotted via type ascription and the
   variable-name denylist. *)

let same a b = (a : Frame.t) = b

let order g h = compare (g : Graph.t) h

let bucket frame = Hashtbl.hash frame
