(* Fixture: R3 — a raise escaping an Engine.schedule callback is
   flagged; wrapped in try or explicitly waived it is not. *)

let bad eng = Engine.schedule eng ~delay_ns:10 (fun () -> failwith "boom")

let wrapped eng =
  Engine.schedule eng ~delay_ns:10 (fun () -> try failwith "contained" with _ -> ())

let waived eng =
  Engine.schedule eng ~delay_ns:10 (fun () ->
      (failwith "intended" [@dumbnet.partial "fixture: aborting the process is the point"]))
