(* Fixture: R5 waived — [@dumbnet.wire_const] is the only attribute
   that silences R5, and it must carry a reason. *)

let[@dumbnet.wire_const "fixture: decoding a third-party capture that hardcodes the EtherType"] foreign
    =
  0x9800
