(* Fixture: R8 state module — one unguarded toplevel ref (a race when a
   worker reaches it), one Atomic slot (always safe), one waived ref. *)

let total = ref 0

let processed = Atomic.make 0

let[@dumbnet.shared "fixture: test-only tally, torn updates acceptable"] debug_count =
  ref 0

let bump_total n = total := n

let read_total () = !total

let bump_processed () = Atomic.incr processed

let bump_debug () = incr debug_count
