(* R7 fixture: raw multicore primitives outside the pool module. The
   spawn, the lock, the condvar and the atomic must each be flagged;
   talking about domains without creating them stays legal. *)

let d = Domain.spawn (fun () -> 41 + 1)

let m = Mutex.create ()

let c = Condition.create ()

let a = Atomic.make 0

(* Reading pool-style knobs is fine — only creation is fenced. *)
let cores = Domain.recommended_domain_count ()

let current () = Atomic.get a

let locked f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let join () = Domain.join d
