(* Fixture: R5 — probe-program opcodes re-hardcoded. The wire codec and
   the switch-side interpreter must agree on these bytes, so like the
   EtherTypes they live in Constants. The decimal spelling [161] is
   deliberate negative space: R5 matches the canonical hex literal
   text, not the value. *)

let stamp_op = 0xA1

let classify = function
  | 0xa2 -> `Mirror
  | _ -> `Other

let is_bounce op = op = 0xA3

let not_an_opcode = 161
