(* Fixture: R5 — wire constants re-hardcoded as literals. The mask
   [land 0xff] is deliberate negative space: masking to a byte is
   arithmetic, not a wire constant. *)

let ethertype = 0x9800

let is_end b = b = 0xff

let mask x = x land 0xff

let classify = function
  | 0xff -> `End
  | _ -> `Other

let default_hop_limit = 5

let notice origin = Frame.notice ~origin ~event:Up ~hops_left:5

let stamp = { event = Up; hops_left = 5 }
