(* Incremental failure repair: the scoped distance-cache eviction and
   the controller's delta re-push must be invisible — every retained
   table and every regenerated path graph byte-identical to a cold
   recompute at the same generation — while doing provably less work
   than the wholesale invalidation they replaced. *)

open Dumbnet.Topology
open Dumbnet.Topology.Types
module Topo_store = Dumbnet.Control.Topo_store
module Controller = Dumbnet.Host.Controller
module Network = Dumbnet.Sim.Network
module Fabric = Dumbnet.Fabric
module Payload = Dumbnet.Packet.Payload
module Rng = Dumbnet.Util.Rng

let check = Alcotest.check

let table_bindings d = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) d [])

(* Every memoized distance table — retained, repaired, or recomputed —
   must equal a cold BFS on the store's current graph. *)
let store_matches_cold store =
  let g = Topo_store.graph store in
  let snap = Graph.adjacency g in
  List.for_all
    (fun sw ->
      table_bindings (Topo_store.distances store ~from:sw)
      = table_bindings (Adjacency.bfs_distances snap ~from:sw))
    (Graph.switch_ids g)

let warm_all_roots store =
  List.iter
    (fun sw -> ignore (Topo_store.distances store ~from:sw))
    (Graph.switch_ids (Topo_store.graph store))

(* --- unit: a single failure evicts a strict subset of the cache --- *)

let test_scoped_eviction () =
  let b = Builder.fat_tree ~k:4 () in
  let store = Topo_store.create b.Builder.graph in
  let g = Topo_store.graph store in
  warm_all_roots store;
  let n = Graph.num_switches g in
  check Alcotest.int "cache fully warm" n (Topo_store.cached_roots store);
  (* Fail an edge-layer cable. A fat tree is bipartite (edge and core
     switches vs aggregation), so every cable is tight for every root —
     the failure may legitimately evict the whole cache; what must
     never happen is a wholesale generation reset. *)
  let key, _ = List.hd (Graph.switch_links g) in
  let le, _ = Link_key.ends key in
  (match Topo_store.apply_event store { Payload.position = le; up = false; event_seq = 1 } with
  | Topo_store.Applied -> ()
  | _ -> Alcotest.fail "failure should apply");
  let r = Topo_store.repair_stats store in
  check Alcotest.int "no wholesale reset" 0 r.Topo_store.full_resets;
  check Alcotest.bool "some tables evicted" true (r.Topo_store.evicted_roots > 0);
  check Alcotest.int "retained + evicted covers the cache" n
    (r.Topo_store.retained_roots + r.Topo_store.evicted_roots);
  check Alcotest.bool "retained tables exact after failure" true (store_matches_cold store);
  (* [store_matches_cold] re-warmed every root. Restoring the cable can
     only shorten paths whose endpoint distances differ by >= 2, so
     most tables survive the restore. *)
  check Alcotest.int "cache re-warmed" n (Topo_store.cached_roots store);
  let before = Topo_store.repair_stats store in
  (match Topo_store.apply_event store { Payload.position = le; up = true; event_seq = 2 } with
  | Topo_store.Applied -> ()
  | _ -> Alcotest.fail "restore should apply");
  let after = Topo_store.repair_stats store in
  check Alcotest.int "still no wholesale reset" 0 after.Topo_store.full_resets;
  check Alcotest.bool "restore retains most tables" true
    (after.Topo_store.retained_roots - before.Topo_store.retained_roots > n / 2);
  check Alcotest.bool "retained tables exact after restore" true (store_matches_cold store)

(* On a non-bipartite topology (jellyfish has odd cycles) the tight-edge
   rule has real bite: across single-cable failures, a healthy share of
   distance tables must survive eviction. *)
let test_jellyfish_retention () =
  let built =
    Builder.random_regular ~rng:(Rng.create 5) ~switches:16 ~degree:4 ~hosts_per_switch:1 ()
  in
  let store = Topo_store.create built.Builder.graph in
  let g = Topo_store.graph store in
  let n = Graph.num_switches g in
  let fail_retained = ref 0 and fail_evicted = ref 0 and seq = ref 0 in
  List.iter
    (fun (key, _) ->
      warm_all_roots store;
      let le, _ = Link_key.ends key in
      let before = Topo_store.repair_stats store in
      incr seq;
      (match Topo_store.apply_event store { Payload.position = le; up = false; event_seq = !seq }
       with
      | Topo_store.Applied -> ()
      | _ -> Alcotest.fail "failure should apply");
      let after = Topo_store.repair_stats store in
      fail_retained :=
        !fail_retained + after.Topo_store.retained_roots - before.Topo_store.retained_roots;
      fail_evicted :=
        !fail_evicted + after.Topo_store.evicted_roots - before.Topo_store.evicted_roots;
      check Alcotest.bool "tables exact" true (store_matches_cold store);
      incr seq;
      match Topo_store.apply_event store { Payload.position = le; up = true; event_seq = !seq }
      with
      | Topo_store.Applied -> ()
      | _ -> Alcotest.fail "restore should apply")
    (Graph.switch_links g);
  let r = Topo_store.repair_stats store in
  check Alcotest.int "never a wholesale reset" 0 r.Topo_store.full_resets;
  let events = List.length (Graph.switch_links g) in
  check Alcotest.int "every failure covers the warm cache" (n * events)
    (!fail_retained + !fail_evicted);
  check Alcotest.bool "failures retain a real share of tables" true
    (!fail_retained * 5 > (n * events) * 1)

let test_host_link_event_keeps_cache () =
  let b = Builder.fat_tree ~k:4 () in
  let store = Topo_store.create b.Builder.graph in
  let g = Topo_store.graph store in
  warm_all_roots store;
  let host_end =
    match Graph.host_location g (List.hd (Graph.host_ids g)) with
    | Some le -> le
    | None -> Alcotest.fail "host detached"
  in
  (match Topo_store.apply_event store { Payload.position = host_end; up = false; event_seq = 1 }
   with
  | Topo_store.Applied -> ()
  | _ -> Alcotest.fail "host-link failure should apply");
  let r = Topo_store.repair_stats store in
  (* Switch-to-switch distances cannot change: nothing evicted, nothing
     reset, cache still fully warm and exact. *)
  check Alcotest.int "nothing evicted" 0 r.Topo_store.evicted_roots;
  check Alcotest.int "no reset" 0 r.Topo_store.full_resets;
  check Alcotest.int "cache still full" (Graph.num_switches g) (Topo_store.cached_roots store);
  check Alcotest.bool "tables exact" true (store_matches_cold store)

let test_out_of_band_mutation_resets () =
  let b = Builder.fat_tree ~k:4 () in
  let store = Topo_store.create b.Builder.graph in
  warm_all_roots store;
  (* Mutate the graph behind the store's back: the unified generation
     check must notice and drop everything rather than serve stale. *)
  let g = Topo_store.graph store in
  let key, _ = List.hd (Graph.switch_links g) in
  let le, _ = Link_key.ends key in
  Graph.set_link_state g le ~up:false;
  check Alcotest.bool "exact after out-of-band mutation" true (store_matches_cold store);
  check Alcotest.bool "repaired by full reset" true
    ((Topo_store.repair_stats store).Topo_store.full_resets > 0)

(* --- qcheck: randomized fail/restore sequences, incremental = cold --- *)

let switch_link_array g = Array.of_list (List.map fst (Graph.switch_links g))

(* Apply a randomized event sequence through [apply_event] (the
   controller's failure-notice path) on both an evict-only and an
   eager-repair store, checking every cached table against a cold BFS
   after every single event. *)
let run_event_sequence ~name built ops =
  let stores =
    [ Topo_store.create built.Builder.graph;
      Topo_store.create ~eager_repair:true built.Builder.graph ]
  in
  List.iter warm_all_roots stores;
  let links = switch_link_array (Topo_store.graph (List.hd stores)) in
  let seq = ref 0 in
  List.for_all
    (fun (pick, up) ->
      incr seq;
      let key = links.(pick mod Array.length links) in
      let le, _ = Link_key.ends key in
      List.for_all
        (fun store ->
          ignore
            (Topo_store.apply_event store { Payload.position = le; up; event_seq = !seq });
          store_matches_cold store
          ||
          (QCheck.Test.fail_reportf "%s: stale table after %s of %s" name
             (if up then "restore" else "failure")
             (Format.asprintf "%a" Link_key.pp key)))
        stores)
    ops

let fat_tree_event_prop =
  QCheck.Test.make ~name:"incremental = cold on fat-tree fail/restore" ~count:20
    QCheck.(small_list (pair small_nat bool))
    (fun ops -> run_event_sequence ~name:"fat-tree" (Builder.fat_tree ~k:4 ()) ops)

let jellyfish_event_prop =
  QCheck.Test.make ~name:"incremental = cold on jellyfish fail/restore" ~count:20
    QCheck.(pair small_nat (small_list (pair small_nat bool)))
    (fun (seed, ops) ->
      let built =
        Builder.random_regular ~rng:(Rng.create (seed + 1)) ~switches:16 ~degree:4
          ~hosts_per_switch:1 ()
      in
      run_event_sequence ~name:"jellyfish" built ops)

(* Path graphs served through the repaired cache must equal cold
   generation at every step of a fail/restore sequence. *)
let pathgraph_equiv_prop =
  QCheck.Test.make ~name:"served path graphs = cold generate through repair" ~count:15
    QCheck.(small_list (pair small_nat bool))
    (fun ops ->
      let built = Builder.fat_tree ~k:4 () in
      let store = Topo_store.create built.Builder.graph in
      let g = Topo_store.graph store in
      let links = switch_link_array g in
      let hosts = Array.of_list (Graph.host_ids g) in
      let rng = Rng.create 99 in
      let seq = ref 0 in
      List.for_all
        (fun (pick, up) ->
          incr seq;
          let le, _ = Link_key.ends links.(pick mod Array.length links) in
          ignore (Topo_store.apply_event store { Payload.position = le; up; event_seq = !seq });
          (* Probe a handful of random pairs at this generation. *)
          List.for_all
            (fun _ ->
              let src = hosts.(Rng.int rng (Array.length hosts)) in
              let dst = hosts.(Rng.int rng (Array.length hosts)) in
              src = dst
              ||
              let wire = Option.map Pathgraph.to_wire in
              wire (Topo_store.serve_path_graph store ~src ~dst)
              = wire (Pathgraph.generate g ~src ~dst))
            [ (); (); (); () ])
        ops)

(* --- controller: delta re-push --- *)

(* Find a cable some pushed pair's subgraph contains: those pairs, and
   only those, must be regenerated when it fails. *)
let pick_subscribed_link ctrl =
  let pairs = Controller.cached_pairs ctrl in
  let graphs =
    List.filter_map
      (fun (src, dst) -> Controller.cached_graph ctrl ~src ~dst)
      pairs
  in
  (* Same-switch pairs yield cable-free graphs — skip to one that
     actually crosses the fabric. *)
  match
    List.find_map (fun pg -> Link_set.choose_opt (Pathgraph.links pg)) graphs
  with
  | Some key -> key
  | None -> Alcotest.fail "no pushed graph crosses a cable"

let test_delta_repush_scoped () =
  let built = Builder.fat_tree ~k:4 () in
  let fab = Fabric.create ~seed:3 built in
  let ctrl = Fabric.controller fab in
  let before = Controller.repush_stats ctrl in
  check Alcotest.bool "ledger populated by bootstrap" true
    (before.Controller.cached_pairs > 0);
  let key = pick_subscribed_link ctrl in
  let subscribed_before =
    List.filter
      (fun (src, dst) ->
        match Controller.cached_graph ctrl ~src ~dst with
        | Some pg -> Link_set.mem key (Pathgraph.links pg)
        | None -> false)
      (Controller.cached_pairs ctrl)
  in
  let untouched_before =
    List.filter_map
      (fun (src, dst) ->
        match Controller.cached_graph ctrl ~src ~dst with
        | Some pg when not (Link_set.mem key (Pathgraph.links pg)) ->
          Some ((src, dst), Pathgraph.to_wire pg)
        | Some _ | None -> None)
      (Controller.cached_pairs ctrl)
  in
  let le, _ = Link_key.ends key in
  Fabric.fail_link fab le;
  Fabric.run fab;
  let after = Controller.repush_stats ctrl in
  check Alcotest.bool "a repair round ran" true
    (after.Controller.repair_rounds > before.Controller.repair_rounds);
  check Alcotest.bool "re-push covers the subscribed pairs" true
    (after.Controller.repushed_pairs - before.Controller.repushed_pairs
    >= List.length subscribed_before);
  check Alcotest.bool "re-push is scoped, not wholesale" true
    (after.Controller.repushed_pairs - before.Controller.repushed_pairs
    < before.Controller.cached_pairs);
  (* Every subscribed pair's ledger entry now equals a cold generate on
     the post-failure view. *)
  let g = Topo_store.graph (Controller.store ctrl) in
  List.iter
    (fun (src, dst) ->
      let wire = Option.map Pathgraph.to_wire in
      check Alcotest.bool
        (Printf.sprintf "pair %d->%d regenerated = cold" src dst)
        true
        (wire (Controller.cached_graph ctrl ~src ~dst) = wire (Pathgraph.generate g ~src ~dst)))
    subscribed_before;
  (* Untouched pairs kept their caches live — not regenerated — unless
     a host's own re-query refreshed them during recovery. *)
  let unchanged =
    List.filter
      (fun ((src, dst), w) ->
        match Controller.cached_graph ctrl ~src ~dst with
        | Some pg -> Pathgraph.to_wire pg = w
        | None -> false)
      untouched_before
  in
  check Alcotest.bool "most untouched pairs kept their cache" true
    (List.length unchanged * 2 >= List.length untouched_before)

let test_restore_repushes_nothing () =
  let built = Builder.fat_tree ~k:4 () in
  let fab = Fabric.create ~seed:7 built in
  let ctrl = Fabric.controller fab in
  let key = pick_subscribed_link ctrl in
  let le, _ = Link_key.ends key in
  Fabric.fail_link fab le;
  Fabric.run fab;
  let after_fail = Controller.repush_stats ctrl in
  (* Run past the monitor's 1 s suppression window so the up-notice
     actually fires. *)
  Fabric.run ~for_ns:1_100_000_000 fab;
  Fabric.restore_link fab le;
  Fabric.run fab;
  let after_restore = Controller.repush_stats ctrl in
  check Alcotest.int "restore patch carries no re-push"
    after_fail.Controller.repushed_pairs after_restore.Controller.repushed_pairs;
  check Alcotest.bool "but the patch itself went out" true
    (Controller.patches_sent ctrl >= 2)

(* --- burst coalescing --- *)

let two_distinct_links g =
  match Graph.switch_links g with
  | (k1, _) :: (k2, _) :: _ -> (k1, k2)
  | _ -> Alcotest.fail "need two switch links"

let test_burst_coalescing () =
  let built = Builder.fat_tree ~k:4 () in
  (* Without coalescing: two events, two patches. *)
  let fab = Fabric.create ~seed:11 built in
  let k1, k2 = two_distinct_links (Network.graph (Fabric.network fab)) in
  let le1, _ = Link_key.ends k1 and le2, _ = Link_key.ends k2 in
  let p0 = Controller.patches_sent (Fabric.controller fab) in
  Fabric.fail_link fab le1;
  Fabric.fail_link fab le2;
  Fabric.run fab;
  let immediate = Controller.patches_sent (Fabric.controller fab) - p0 in
  check Alcotest.int "immediate mode: one patch per event" 2 immediate;
  (* With a 10 ms window the burst leaves as one combined patch. Build
     a fresh topology: the first fabric's network owns [built]'s graph
     and has already taken both cables down in it. *)
  let built = Builder.fat_tree ~k:4 () in
  let fab = Fabric.create ~seed:11 ~coalesce_ns:10_000_000 built in
  let p0 = Controller.patches_sent (Fabric.controller fab) in
  Fabric.fail_link fab le1;
  Fabric.fail_link fab le2;
  Fabric.run fab;
  let coalesced = Controller.patches_sent (Fabric.controller fab) - p0 in
  check Alcotest.int "coalesced mode: one combined patch" 1 coalesced;
  (* Both failures must still be visible in the controller's view. *)
  let g = Topo_store.graph (Controller.store (Fabric.controller fab)) in
  List.iter
    (fun key ->
      match List.assoc_opt key (Graph.switch_links g) with
      | Some up -> check Alcotest.bool "failure applied" false up
      | None -> Alcotest.fail "cable vanished from the view")
    [ k1; k2 ]

let () =
  Alcotest.run "incremental"
    [
      ( "distance cache",
        [
          Alcotest.test_case "scoped eviction on failure" `Quick test_scoped_eviction;
          Alcotest.test_case "jellyfish failures retain tables" `Quick
            test_jellyfish_retention;
          Alcotest.test_case "host-link events keep the cache" `Quick
            test_host_link_event_keeps_cache;
          Alcotest.test_case "out-of-band mutation full-resets" `Quick
            test_out_of_band_mutation_resets;
          QCheck_alcotest.to_alcotest fat_tree_event_prop;
          QCheck_alcotest.to_alcotest jellyfish_event_prop;
          QCheck_alcotest.to_alcotest pathgraph_equiv_prop;
        ] );
      ( "delta re-push",
        [
          Alcotest.test_case "failure re-pushes only subscribed pairs" `Quick
            test_delta_repush_scoped;
          Alcotest.test_case "restore re-pushes nothing" `Quick test_restore_repushes_nothing;
          Alcotest.test_case "burst coalescing" `Quick test_burst_coalescing;
        ] );
    ]
