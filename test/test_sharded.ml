(* Tests for the sharded discrete-event engine and its supporting cast:
   the topology partitioner, the struct-of-arrays frame pool, and the
   determinism contract — a run over any shard count (and any pool
   width) is byte-identical to the single-heap run, including mid-run
   link failures that change the cut set. *)

open Dumbnet.Topology
open Dumbnet.Topology.Types
module Frame_pool = Dumbnet.Packet.Frame_pool
module Frame = Dumbnet.Packet.Frame
module Payload = Dumbnet.Packet.Payload
module Sharded = Dumbnet.Sim.Sharded
module Engine = Dumbnet.Sim.Engine
module Network = Dumbnet.Sim.Network
module Pool = Dumbnet.Util.Pool
module Rng = Dumbnet.Util.Rng

let check = Alcotest.check

(* --- partitioner --- *)

let test_partition_covers_and_balances () =
  let built = Builder.fat_tree ~k:4 () in
  let g = built.Builder.graph in
  let n = Graph.num_switches g in
  List.iter
    (fun shards ->
      let part = Partition.compute g ~shards in
      check Alcotest.int (Printf.sprintf "shards=%d count" shards) shards
        part.Partition.shards;
      check Alcotest.int
        (Printf.sprintf "shards=%d sizes sum" shards)
        n
        (Array.fold_left ( + ) 0 part.Partition.sizes);
      Array.iter
        (fun w ->
          check Alcotest.bool "assignment in range" true (w >= 0 && w < shards))
        part.Partition.of_switch;
      Array.iter
        (fun size ->
          (* Balance: within one of the even split. *)
          check Alcotest.bool
            (Printf.sprintf "shards=%d balanced (%d)" shards size)
            true
            (size >= (n / shards) - 1 && size <= (n / shards) + 2))
        part.Partition.sizes)
    [ 2; 4; 8 ]

let test_partition_cut_is_exact () =
  let built = Builder.fat_tree ~k:4 () in
  let g = built.Builder.graph in
  let part = Partition.compute g ~shards:4 in
  let expected =
    List.filter
      (fun (key, _up) ->
        let a, b = Link_key.ends key in
        part.Partition.of_switch.(a.sw) <> part.Partition.of_switch.(b.sw))
      (Graph.switch_links g)
    |> List.map fst
    |> List.sort Link_key.compare
  in
  check Alcotest.int "cut size" (List.length expected) (List.length part.Partition.cut);
  check Alcotest.bool "cut cables exact" true (expected = part.Partition.cut);
  check Alcotest.bool "cut is a strict subset" true
    (List.length part.Partition.cut < List.length (Graph.switch_links g))

let test_partition_trivial_and_clamped () =
  let built = Builder.fat_tree ~k:4 () in
  let g = built.Builder.graph in
  let one = Partition.compute g ~shards:1 in
  check Alcotest.int "shards=1" 1 one.Partition.shards;
  check Alcotest.bool "no cut at shards=1" true (one.Partition.cut = []);
  Array.iter (fun w -> check Alcotest.int "all in shard 0" 0 w) one.Partition.of_switch;
  let n = Graph.num_switches g in
  let big = Partition.compute g ~shards:(n * 3) in
  check Alcotest.int "clamped to switch count" n big.Partition.shards

(* Pod of a non-core fat-tree switch, from the builder's id layout:
   cores first, then all aggregation switches pod-major, then all edge
   switches pod-major, k/2 of each per pod. *)
let fat_tree_pod ~k sw =
  let half = k / 2 in
  let cores = half * half in
  if sw < cores then None
  else if sw < cores + (k * half) then Some ((sw - cores) / half)
  else Some ((sw - cores - (k * half)) / half)

(* The partitioner's fat-tree promise: pods are recovered whole. At
   [shards = k] every region is exactly one pod plus its share of the
   core layer; at [shards = 2] each half holds complete pods. Checked
   at k = 16 — 320 switches, the smallest size where greedy one-at-a-
   time growth is known to shred pods. *)
let test_partition_recovers_pods_k16 () =
  let k = 16 in
  let built = Builder.fat_tree ~k () in
  let g = built.Builder.graph in
  let n = Graph.num_switches g in
  List.iter
    (fun shards ->
      let part = Partition.compute g ~shards in
      (* Every pod lands in exactly one region. *)
      let pod_region = Hashtbl.create 16 in
      let split = ref 0 in
      Array.iteri
        (fun sw w ->
          match fat_tree_pod ~k sw with
          | None -> ()
          | Some pod -> (
            match Hashtbl.find_opt pod_region pod with
            | None -> Hashtbl.replace pod_region pod w
            | Some w' -> if w <> w' then incr split))
        part.Partition.of_switch;
      check Alcotest.int (Printf.sprintf "shards=%d: no pod is split" shards) 0 !split;
      (* Balance stays within one switch of the even split. *)
      Array.iter
        (fun size ->
          check Alcotest.bool
            (Printf.sprintf "shards=%d balanced (%d)" shards size)
            true
            (abs (size - (n / shards)) <= 1))
        part.Partition.sizes;
      (* Cut invariant: exactly the cables whose ends disagree. *)
      let expected =
        List.filter
          (fun (key, _up) ->
            let a, b = Link_key.ends key in
            part.Partition.of_switch.(a.sw) <> part.Partition.of_switch.(b.sw))
          (Graph.switch_links g)
        |> List.map fst
        |> List.sort Link_key.compare
      in
      check Alcotest.bool (Printf.sprintf "shards=%d cut exact" shards) true
        (expected = part.Partition.cut))
    [ 2; k ]

(* On a jellyfish there are no pods to recover — the partitioner is a
   plain min-cut heuristic — but coverage, balance, cut exactness and
   a non-degenerate cut must still hold at realistic scale. *)
let test_partition_jellyfish_256 () =
  let built =
    Builder.random_regular ~rng:(Rng.create 23) ~switches:256 ~degree:6 ~hosts_per_switch:1 ()
  in
  let g = built.Builder.graph in
  let n = Graph.num_switches g in
  List.iter
    (fun shards ->
      let part = Partition.compute g ~shards in
      check Alcotest.int (Printf.sprintf "shards=%d sizes sum" shards) n
        (Array.fold_left ( + ) 0 part.Partition.sizes);
      Array.iter
        (fun size ->
          check Alcotest.bool
            (Printf.sprintf "shards=%d balanced (%d)" shards size)
            true
            (abs (size - (n / shards)) <= 1))
        part.Partition.sizes;
      let expected =
        List.filter
          (fun (key, _up) ->
            let a, b = Link_key.ends key in
            part.Partition.of_switch.(a.sw) <> part.Partition.of_switch.(b.sw))
          (Graph.switch_links g)
        |> List.map fst
        |> List.sort Link_key.compare
      in
      check Alcotest.bool (Printf.sprintf "shards=%d cut exact" shards) true
        (expected = part.Partition.cut);
      check Alcotest.bool
        (Printf.sprintf "shards=%d cut below uniform-random" shards)
        true
        (* A random assignment cuts (1 - 1/shards) of the cables; the
           bubble growth must do strictly better than 60% of that. *)
        (Partition.cut_fraction part g < 0.6 *. (1.0 -. (1.0 /. float_of_int shards))))
    [ 2; 4; 8 ]

let test_partition_deterministic () =
  let built =
    Builder.random_regular ~rng:(Rng.create 5) ~switches:16 ~degree:4 ~hosts_per_switch:1 ()
  in
  let g = built.Builder.graph in
  let a = Partition.compute g ~shards:4 in
  let b = Partition.compute g ~shards:4 in
  check Alcotest.bool "same assignment" true (a.Partition.of_switch = b.Partition.of_switch);
  check Alcotest.bool "same cut" true (a.Partition.cut = b.Partition.cut)

(* --- frame pool --- *)

let test_pool_byte_size_matches_frame () =
  let fp = Frame_pool.create ~capacity:4 () in
  let payload = Payload.Data { flow = 0; seq = 0; size = 777; sent_ns = 0 } in
  let reference tags ~int_enabled ~stamps =
    let f = Frame.along_path ~src:1 ~dst:2 ~tags_of:tags ~payload in
    let f = if int_enabled then Frame.with_int f else f in
    let f =
      List.fold_left
        (fun f i ->
          Frame.add_stamp
            { Dumbnet.Packet.Int_stamp.switch = i; port = 1; queue_depth = 0; timestamp_ns = i }
            f)
        f
        (List.init stamps (fun i -> i))
    in
    Frame.byte_size f
  in
  List.iter
    (fun (tags, int_enabled, stamps) ->
      let s = Frame_pool.acquire fp ~src:1 ~dst:2 ~payload_bytes:777 ~int_enabled in
      Frame_pool.set_tags fp s tags;
      for i = 0 to stamps - 1 do
        ignore
          (Frame_pool.try_stamp fp s ~switch:i ~port:1 ~queue_depth:0 ~timestamp_ns:i)
      done;
      check Alcotest.int
        (Printf.sprintf "byte size (|tags|=%d int=%b stamps=%d)" (List.length tags)
           int_enabled stamps)
        (reference tags ~int_enabled ~stamps)
        (Frame_pool.byte_size fp s);
      Frame_pool.release fp s)
    [ ([ 3; 1; 2 ], false, 0); ([ 5 ], true, 0); ([ 2; 2; 2; 2 ], true, 3); ([], false, 0) ]

let test_pool_reuse_carries_nothing () =
  let fp = Frame_pool.create ~capacity:1 () in
  let s = Frame_pool.acquire fp ~src:7 ~dst:8 ~payload_bytes:100 ~int_enabled:true in
  Frame_pool.set_tags fp s [ 4; 9; 2 ];
  ignore (Frame_pool.try_stamp fp s ~switch:1 ~port:4 ~queue_depth:55 ~timestamp_ns:99);
  ignore (Frame_pool.try_stamp fp s ~switch:2 ~port:9 ~queue_depth:66 ~timestamp_ns:100);
  Frame_pool.advance fp s;
  Frame_pool.release fp s;
  (* Same physical slot comes back (capacity 1): nothing of the first
     life may be observable. *)
  let s' = Frame_pool.acquire fp ~src:1 ~dst:2 ~payload_bytes:0 ~int_enabled:false in
  check Alcotest.int "same slot recycled" s s';
  check Alcotest.int "no stale stamps" 0 (Frame_pool.stamp_count fp s');
  check Alcotest.int "no stale tags" 0 (Frame_pool.remaining_tag_bytes fp s');
  check Alcotest.bool "INT flag reset" false (Frame_pool.int_enabled fp s');
  check Alcotest.bool "stamping a non-INT frame refused" false
    (Frame_pool.try_stamp fp s' ~switch:3 ~port:1 ~queue_depth:0 ~timestamp_ns:0);
  Frame_pool.set_tags fp s' [ 6 ];
  check Alcotest.int "fresh tag stack" 2 (Frame_pool.remaining_tag_bytes fp s');
  check Alcotest.int "fresh head tag" 6 (Frame_pool.peek_tag fp s');
  Frame_pool.release fp s'

let test_pool_export_import_roundtrip () =
  let a = Frame_pool.create ~capacity:2 () in
  let b = Frame_pool.create ~capacity:2 () in
  let s = Frame_pool.acquire a ~src:3 ~dst:4 ~payload_bytes:50 ~int_enabled:true in
  Frame_pool.set_tags a s [ 7; 1; 9 ];
  Frame_pool.advance a s;
  (* Consumed one tag. *)
  ignore (Frame_pool.try_stamp a s ~switch:5 ~port:7 ~queue_depth:123 ~timestamp_ns:42);
  let s' =
    Frame_pool.import b ~src:(Frame_pool.src a s) ~dst:(Frame_pool.dst a s)
      ~payload_bytes:(Frame_pool.payload_bytes a s)
      ~int_enabled:(Frame_pool.int_enabled a s)
      ~tags:(Frame_pool.export_tags a s)
      ~stamps:(Frame_pool.export_stamps a s)
  in
  check Alcotest.int "remaining tags travel" 3 (Frame_pool.remaining_tag_bytes b s');
  check Alcotest.int "head tag" 1 (Frame_pool.peek_tag b s');
  check Alcotest.int "stamps travel" 1 (Frame_pool.stamp_count b s');
  check Alcotest.int "stamp switch" 5 (Frame_pool.stamp_switch b s' 0);
  check Alcotest.int "stamp queue" 123 (Frame_pool.stamp_queue b s' 0);
  check Alcotest.int "byte size preserved" (Frame_pool.byte_size a s)
    (Frame_pool.byte_size b s')

let test_pool_growth () =
  let fp = Frame_pool.create ~capacity:2 () in
  let slots =
    List.init 9 (fun i ->
        let s = Frame_pool.acquire fp ~src:i ~dst:i ~payload_bytes:i ~int_enabled:false in
        Frame_pool.set_tags fp s [ (i mod 5) + 1 ];
        s)
  in
  check Alcotest.bool "grew" true (Frame_pool.capacity fp >= 9);
  check Alcotest.int "all live" 9 (Frame_pool.live fp);
  check Alcotest.int "slots distinct" 9
    (List.length (List.sort_uniq compare slots));
  List.iteri
    (fun i s ->
      check Alcotest.int (Printf.sprintf "slot %d payload survived growth" i) i
        (Frame_pool.payload_bytes fp s);
      Frame_pool.release fp s)
    slots;
  check Alcotest.int "all released" 0 (Frame_pool.live fp)

(* --- sharded engine vs the classic engine, single frame --- *)

(* One frame, one path: tie-breaking can't matter, so the classic
   Network and the sharded engine must agree on every counter. *)
let test_single_frame_matches_classic () =
  let built = Builder.fat_tree ~k:4 () in
  let g = built.Builder.graph in
  let hosts = Array.of_list built.Builder.hosts in
  let src = hosts.(0) and dst = hosts.(Array.length hosts - 1) in
  let tags =
    match Routing.host_route g ~src ~dst with
    | Some p -> Path.tags p
    | None -> Alcotest.fail "no route"
  in
  let payload = Payload.Data { flow = 0; seq = 0; size = 1000; sent_ns = 0 } in
  let eng = Engine.create () in
  let net = Network.create ~engine:eng ~graph:g () in
  Network.set_host_handler net dst (fun _ -> ());
  let f = Frame.with_int (Frame.along_path ~src ~dst ~tags_of:tags ~payload) in
  Network.host_send net src f;
  Engine.run eng;
  let classic = Network.stats net in
  let sim = Sharded.create ~shards:1 ~graph:g () in
  Sharded.inject sim ~at_ns:0 ~src ~dst ~tags ~payload_bytes:1000 ~int_enabled:true ();
  Sharded.run sim;
  let st = Sharded.stats sim in
  check Alcotest.int "hops" classic.Network.switch_hops st.Network.switch_hops;
  check Alcotest.int "delivered" classic.Network.host_rx st.Network.host_rx;
  check Alcotest.int "bytes" classic.Network.bytes_delivered st.Network.bytes_delivered;
  check Alcotest.int "stamps" classic.Network.int_stamped st.Network.int_stamped;
  check Alcotest.int "tx" classic.Network.host_tx st.Network.host_tx;
  check Alcotest.int "no leak" 0 (Sharded.live_slots sim)

let test_mid_run_failure_drops () =
  (* A chain 0-1-2-...: kill the middle cable while the frame is still
     in the source NIC, and the frame must die at the break with a
     dataplane drop; restore instead and it must arrive. *)
  let built = Builder.linear ~n:4 () in
  let g = built.Builder.graph in
  let hosts = Array.of_list built.Builder.hosts in
  let src = hosts.(0) and dst = hosts.(3) in
  let tags =
    match Routing.host_route g ~src ~dst with
    | Some p -> Path.tags p
    | None -> Alcotest.fail "no route"
  in
  let cut =
    match Graph.peer_port g { sw = 1; port = 2 } with
    | Some _ -> { sw = 1; port = 2 }
    | None -> (
      match Graph.switch_neighbors g 1 with
      | (p, _, _) :: _ -> { sw = 1; port = p }
      | [] -> Alcotest.fail "no cable at switch 1")
  in
  let run_with ~failure =
    let sim = Sharded.create ~shards:1 ~graph:g () in
    Sharded.inject sim ~at_ns:0 ~src ~dst ~tags ();
    if failure then Sharded.fail_link_at sim ~at_ns:100 cut;
    Sharded.run sim;
    (Sharded.delivered sim, (Sharded.stats sim).Network.dataplane_drops)
  in
  let ok_rx, ok_drops = run_with ~failure:false in
  check Alcotest.int "healthy chain delivers" 1 ok_rx;
  check Alcotest.int "healthy chain drops nothing" 0 ok_drops;
  let cut_rx, cut_drops = run_with ~failure:true in
  check Alcotest.int "cut chain delivers nothing" 0 cut_rx;
  check Alcotest.int "cut chain drops at the break" 1 cut_drops

(* --- determinism: sharded = single-heap --- *)

(* A randomized scenario: every host sends [frames] INT-stamped frames
   to random destinations at staggered times, and random cables fail
   (some later restore) while traffic is in flight. Observables: the
   delivered-frame digest (arrival times, endpoints, sizes, full INT
   stamp lists), every aggregate counter, and pool hygiene. *)
type fingerprint = {
  fp_digest : int;
  fp_hops : int;
  fp_stats : int * int * int * int * int * int * int;
  fp_leak : int;
}

let scenario_fingerprint ?pool ?engine g ~seed ~shards ~frames =
  let rng = Rng.create (0x5eed + seed) in
  let hosts = Array.of_list (Graph.host_ids g) in
  let n = Array.length hosts in
  let sim = Sharded.create ~shards ?engine ~graph:g () in
  Array.iter
    (fun src ->
      for i = 1 to frames do
        let dst = hosts.(Rng.int rng n) in
        if dst <> src then
          match Routing.host_route g ~src ~dst with
          | Some p ->
            Sharded.inject sim
              ~at_ns:(Rng.int rng 2_000_000)
              ~src ~dst ~tags:(Path.tags p)
              ~payload_bytes:(200 + Rng.int rng 1200)
              ~int_enabled:(i mod 2 = 0)
              ()
          | None -> ()
      done)
    hosts;
  (* Fail a handful of random cables mid-flight (the NIC tx latency
     puts first arrivals past ~562us, so [600us, 3ms] hits traffic),
     restoring some — exercising cut cables and intact ones alike. *)
  let cables = Array.of_list (List.map fst (Graph.switch_links g)) in
  for i = 1 to 3 do
    let key = cables.(Rng.int rng (Array.length cables)) in
    let le, _ = Link_key.ends key in
    let at_ns = 600_000 + Rng.int rng 2_400_000 in
    Sharded.fail_link_at sim ~at_ns le;
    if i mod 2 = 0 then Sharded.restore_link_at sim ~at_ns:(at_ns + Rng.int rng 1_000_000) le
  done;
  Sharded.run ?pool sim;
  let st = Sharded.stats sim in
  {
    fp_digest = Sharded.digest sim;
    fp_hops = Sharded.hops sim;
    fp_stats =
      ( st.Network.host_tx,
        st.Network.host_rx,
        st.Network.switch_hops,
        st.Network.queue_drops,
        st.Network.dataplane_drops,
        st.Network.bytes_delivered,
        st.Network.int_stamped );
    fp_leak = Sharded.live_slots sim;
  }

let check_shard_counts_agree g ~seed ~frames =
  let reference = scenario_fingerprint g ~seed ~shards:1 ~frames in
  check Alcotest.bool "traffic flowed" true (reference.fp_hops > 0);
  check Alcotest.int "no slot leak" 0 reference.fp_leak;
  List.iter
    (fun shards ->
      let got = scenario_fingerprint g ~seed ~shards ~frames in
      check Alcotest.bool
        (Printf.sprintf "shards=%d = single heap (seed %d)" shards seed)
        true (got = reference))
    [ 2; 3; 4 ]

let test_fat_tree_determinism () =
  let built = Builder.fat_tree ~k:4 () in
  List.iter (fun seed -> check_shard_counts_agree built.Builder.graph ~seed ~frames:6) [ 1; 2 ]

let jellyfish_determinism_prop =
  QCheck.Test.make ~name:"sharded = single-heap on random jellyfish" ~count:12
    QCheck.small_nat (fun seed ->
      let built =
        Builder.random_regular ~rng:(Rng.create (seed + 3)) ~switches:16 ~degree:4
          ~hosts_per_switch:1 ()
      in
      let g = built.Builder.graph in
      let reference = scenario_fingerprint g ~seed ~shards:1 ~frames:4 in
      List.for_all
        (fun shards -> scenario_fingerprint g ~seed ~shards ~frames:4 = reference)
        [ 2; 4 ])

let test_pooled_run_matches () =
  (* Domains actually running the windows change nothing. *)
  let built = Builder.fat_tree ~k:4 () in
  let g = built.Builder.graph in
  let reference = scenario_fingerprint g ~seed:9 ~shards:1 ~frames:6 in
  Pool.with_pool ~jobs:2 (fun pool ->
      List.iter
        (fun shards ->
          let got = scenario_fingerprint ~pool g ~seed:9 ~shards ~frames:6 in
          check Alcotest.bool
            (Printf.sprintf "pooled shards=%d = single heap" shards)
            true (got = reference))
        [ 2; 4 ])

(* --- scheduler choice is invisible: heap, wheel, and wheel+chaining
   produce bit-identical fingerprints on the full scenario (traffic,
   INT, drops, mid-run fail/restore) at every shard count --- *)

let check_engines_agree g ~seed ~frames =
  List.iter
    (fun shards ->
      let reference =
        scenario_fingerprint ~engine:Sharded.Heap_sched g ~seed ~shards ~frames
      in
      check Alcotest.bool "traffic flowed" true (reference.fp_hops > 0);
      check Alcotest.int "no slot leak" 0 reference.fp_leak;
      List.iter
        (fun engine ->
          let got = scenario_fingerprint ~engine g ~seed ~shards ~frames in
          check Alcotest.bool
            (Printf.sprintf "%s = heap (shards=%d, seed %d)"
               (Sharded.engine_kind_name engine) shards seed)
            true (got = reference))
        [ Sharded.Wheel_sched; Sharded.Wheel_chain ])
    [ 1; 2; 4 ]

let test_engines_fat_tree () =
  let built = Builder.fat_tree ~k:4 () in
  List.iter (fun seed -> check_engines_agree built.Builder.graph ~seed ~frames:6) [ 1; 5 ]

let test_engines_jellyfish () =
  let built =
    Builder.random_regular ~rng:(Rng.create 7) ~switches:16 ~degree:4
      ~hosts_per_switch:1 ()
  in
  check_engines_agree built.Builder.graph ~seed:3 ~frames:5

let () =
  Alcotest.run "sharded"
    [
      ( "partition",
        [
          Alcotest.test_case "covers and balances" `Quick test_partition_covers_and_balances;
          Alcotest.test_case "cut is exact" `Quick test_partition_cut_is_exact;
          Alcotest.test_case "trivial and clamped" `Quick test_partition_trivial_and_clamped;
          Alcotest.test_case "recovers pods at k=16" `Quick test_partition_recovers_pods_k16;
          Alcotest.test_case "jellyfish-256" `Quick test_partition_jellyfish_256;
          Alcotest.test_case "deterministic" `Quick test_partition_deterministic;
        ] );
      ( "frame pool",
        [
          Alcotest.test_case "byte size matches Frame" `Quick test_pool_byte_size_matches_frame;
          Alcotest.test_case "reuse carries nothing" `Quick test_pool_reuse_carries_nothing;
          Alcotest.test_case "export/import roundtrip" `Quick test_pool_export_import_roundtrip;
          Alcotest.test_case "growth" `Quick test_pool_growth;
        ] );
      ( "engine",
        [
          Alcotest.test_case "single frame = classic" `Quick test_single_frame_matches_classic;
          Alcotest.test_case "mid-run failure" `Quick test_mid_run_failure_drops;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fat-tree k=4 all shard counts" `Quick test_fat_tree_determinism;
          QCheck_alcotest.to_alcotest jellyfish_determinism_prop;
          Alcotest.test_case "pooled = sequential" `Quick test_pooled_run_matches;
          Alcotest.test_case "engines agree on fat-tree k=4" `Quick test_engines_fat_tree;
          Alcotest.test_case "engines agree on jellyfish-16" `Quick test_engines_jellyfish;
        ] );
    ]
