(* Tests for the pod-partitioned controller: the hash-consed tag-stack
   arena, the compact path-graph form it backs, and the headline
   property — a sharded controller serves byte-identical path graphs
   to an unsharded [Topo_store] across fail/restore churn, for shard
   counts 1, 2 and 4. *)

open Dumbnet.Topology
open Dumbnet.Topology.Types
module Payload = Dumbnet.Packet.Payload
module Topo_store = Dumbnet.Control.Topo_store
module Shard = Dumbnet.Control.Shard
module Rng = Dumbnet.Util.Rng

let check = Alcotest.check

(* --- tag arena --- *)

let test_arena_interns_and_dedups () =
  let a = Tag_arena.create ~initial_bytes:2 () in
  let h1 = Tag_arena.intern a [ 1; 2; 3 ] in
  let h2 = Tag_arena.intern a [ 9 ] in
  let h3 = Tag_arena.intern a [ 1; 2; 3 ] in
  check Alcotest.int "equal stacks share a handle" h1 h3;
  check Alcotest.bool "distinct stacks differ" true (h1 <> h2);
  check Alcotest.int "distinct stacks" 2 (Tag_arena.stacks a);
  check Alcotest.int "interns counted" 3 (Tag_arena.interns a);
  check Alcotest.int "bytes = sum of distinct lengths" 4 (Tag_arena.bytes a);
  check Alcotest.(list int) "get roundtrips" [ 1; 2; 3 ] (Tag_arena.get a h1);
  check Alcotest.int "length without materializing" 3 (Tag_arena.length a h1);
  let seen = ref [] in
  Tag_arena.iter a h1 (fun tag -> seen := tag :: !seen);
  check Alcotest.(list int) "iter walks in order" [ 1; 2; 3 ] (List.rev !seen);
  (* The empty stack is a valid stack (same-switch route). *)
  let he = Tag_arena.intern a [] in
  check Alcotest.(list int) "empty stack" [] (Tag_arena.get a he);
  check Alcotest.int "empty stack interned once" he (Tag_arena.intern a [])

let test_arena_growth_and_validation () =
  let a = Tag_arena.create ~initial_bytes:1 () in
  (* Force both the byte buffer and the handle tables to double. *)
  let handles =
    List.init 40 (fun i -> Tag_arena.intern a [ i mod 250; (i + 1) mod 250; (i + 2) mod 250 ])
  in
  List.iteri
    (fun i h ->
      check Alcotest.(list int)
        (Printf.sprintf "stack %d survives growth" i)
        [ i mod 250; (i + 1) mod 250; (i + 2) mod 250 ]
        (Tag_arena.get a h))
    handles;
  check Alcotest.int "all distinct" 40 (Tag_arena.stacks a);
  Alcotest.check_raises "tag above max_port rejected"
    (Invalid_argument "Tag_arena.intern: tag 255 outside 0..254") (fun () ->
      ignore (Tag_arena.intern a [ 255 ]));
  Alcotest.check_raises "negative tag rejected"
    (Invalid_argument "Tag_arena.intern: tag -1 outside 0..254") (fun () ->
      ignore (Tag_arena.intern a [ -1 ]));
  Alcotest.check_raises "foreign handle rejected"
    (Invalid_argument "Tag_arena.get: unknown handle 4096") (fun () ->
      ignore (Tag_arena.get a 4096))

(* --- compact path graphs --- *)

let sample_pairs g rng n =
  let hosts = Array.of_list (Graph.host_ids g) in
  List.init n (fun _ ->
      let src = Rng.pick_array rng hosts in
      let dst = Rng.pick_array rng hosts in
      (src, dst))
  |> List.filter (fun (s, d) -> s <> d)

let test_compact_roundtrip () =
  let b = Builder.fat_tree ~k:4 () in
  let g = b.Builder.graph in
  let arena = Tag_arena.create () in
  let rng = Rng.create 7 in
  let checked = ref 0 in
  List.iter
    (fun (src, dst) ->
      match Pathgraph.generate g ~src ~dst with
      | None -> ()
      | Some pg ->
        incr checked;
        let c = Pathgraph.to_compact arena pg in
        let back = Pathgraph.of_compact arena c in
        check Alcotest.bool
          (Printf.sprintf "wire form survives %d->%d" src dst)
          true
          (Pathgraph.to_wire back = Pathgraph.to_wire pg);
        check Alcotest.int "switch count preserved" (Pathgraph.switch_count pg)
          (Pathgraph.compact_switch_count c);
        check Alcotest.(list bool) "link set preserved" []
          (let stored = List.sort Link_key.compare (Pathgraph.compact_links c) in
           let orig =
             List.sort Link_key.compare (Link_set.elements (Pathgraph.links pg))
           in
           if stored = orig then [] else [ false ]))
    (sample_pairs g rng 40);
  check Alcotest.bool "exercised some pairs" true (!checked > 10);
  (* Fat-tree stacks repeat heavily: interning must dedup across pairs. *)
  check Alcotest.bool "arena deduped across pairs" true
    (Tag_arena.interns arena > 2 * Tag_arena.stacks arena)

(* --- the sharded controller --- *)

let encode_opt = function
  | None -> Bytes.empty
  | Some pg -> Payload.encode (Payload.Path_response (Pathgraph.to_wire pg))

(* The acceptance property: across random fail/restore sequences, a
   sharded controller (1, 2 or 4 shards) serves byte-for-byte the same
   path-response payloads as an unsharded store. *)
let sharded_serve_identical_prop =
  QCheck.Test.make ~name:"sharded serve is byte-identical to unsharded across churn" ~count:24
    QCheck.(pair (int_bound 10_000) (int_bound 2))
    (fun (seed, shard_idx) ->
      let shards = [| 1; 2; 4 |].(shard_idx) in
      let b = Builder.fat_tree ~k:4 () in
      let store = Topo_store.create b.Builder.graph in
      let sharded = Shard.create ~shards b.Builder.graph in
      let rng = Rng.create seed in
      let hosts = Array.of_list (Graph.host_ids b.Builder.graph) in
      let cables = Array.of_list (List.map fst (Graph.switch_links b.Builder.graph)) in
      let seq = ref 0 in
      let compare_serves label =
        for _ = 1 to 10 do
          let src = Rng.pick_array rng hosts in
          let dst = Rng.pick_array rng hosts in
          if src <> dst then begin
            let unsharded = Topo_store.serve_path_graph store ~src ~dst in
            let stitched = Shard.serve_path_graph sharded ~src ~dst in
            if not (Bytes.equal (encode_opt unsharded) (encode_opt stitched)) then
              QCheck.Test.fail_reportf "%s: %d->%d differs (shards=%d seed=%d)" label src dst
                shards seed
          end
        done
      in
      compare_serves "initial";
      for round = 1 to 5 do
        let key = Rng.pick_array rng cables in
        let le, _ = Link_key.ends key in
        incr seq;
        let ev = { Payload.position = le; up = Rng.bool rng; event_seq = !seq } in
        let a = Topo_store.apply_event store ev in
        let b = Shard.apply_event sharded ev in
        if a <> b then
          QCheck.Test.fail_reportf "round %d: outcomes differ (shards=%d seed=%d)" round shards
            seed;
        compare_serves (Printf.sprintf "round %d" round)
      done;
      true)

let test_shard_batch_matches_sequential () =
  let b = Builder.fat_tree ~k:4 () in
  let sharded = Shard.create ~shards:4 b.Builder.graph in
  let pairs = Array.of_list (sample_pairs b.Builder.graph (Rng.create 11) 20) in
  let batch = Shard.serve_path_graphs sharded pairs in
  Array.iteri
    (fun i (src, dst) ->
      check Alcotest.bool
        (Printf.sprintf "batch item %d" i)
        true
        (Bytes.equal (encode_opt batch.(i)) (encode_opt (Shard.serve_path_graph sharded ~src ~dst))))
    pairs

let test_shard_patch_and_probe () =
  let b = Builder.testbed () in
  let sharded = Shard.create ~shards:2 b.Builder.graph in
  let ev = { Payload.position = { sw = 2; port = 1 }; up = false; event_seq = 1 } in
  check Alcotest.bool "down applied" true (Shard.apply_event sharded ev = Topo_store.Applied);
  check Alcotest.bool "duplicate ignored" true
    (Shard.apply_event sharded ev = Topo_store.Ignored);
  (match Shard.take_patch sharded with
  | Some (Payload.Topo_patch { version; changes }) ->
    check Alcotest.int "version bumped" 1 version;
    check Alcotest.int "one change" 1 (List.length changes)
  | _ -> Alcotest.fail "expected a patch");
  check Alcotest.bool "patch drained" true (Shard.take_patch sharded = None);
  (* Port-up on an unknown cable: every shard needs the probe result. *)
  (match Shard.apply_event sharded { Payload.position = { sw = 2; port = 60 }; up = true; event_seq = 2 } with
  | Topo_store.Needs_probe le ->
    check Alcotest.bool "probe position" true (le = { sw = 2; port = 60 })
  | _ -> Alcotest.fail "expected needs-probe");
  Shard.record_discovered_link sharded { sw = 2; port = 60 } { sw = 0; port = 60 };
  match Shard.take_patch sharded with
  | Some (Payload.Topo_patch { changes = [ Payload.Link_discovered _ ]; _ }) -> ()
  | _ -> Alcotest.fail "expected discovery patch"

let test_shard_ledger_scoping () =
  let b = Builder.fat_tree ~k:4 () in
  let g = b.Builder.graph in
  let sharded = Shard.create ~shards:4 g in
  let pairs = sample_pairs g (Rng.create 3) 30 in
  let pushed =
    List.filter_map
      (fun (src, dst) ->
        match Shard.serve_path_graph sharded ~src ~dst with
        | None -> None
        | Some pg ->
          Shard.record_push sharded pg;
          Some ((src, dst), pg))
      pairs
  in
  check Alcotest.bool "some pairs pushed" true (List.length pushed > 5);
  (* The cached graph rebuilds to the pushed wire form. *)
  List.iter
    (fun ((src, dst), pg) ->
      match Shard.cached_graph sharded ~src ~dst with
      | None -> Alcotest.fail "pushed pair missing from ledger"
      | Some back ->
        check Alcotest.bool
          (Printf.sprintf "ledger rebuild %d->%d" src dst)
          true
          (Pathgraph.to_wire back = Pathgraph.to_wire pg))
    pushed;
  (* A failed cable must hit exactly the pairs whose generated subgraph
     covered it — and only consult that cable's owning shard. *)
  let key, _ = List.hd (Graph.switch_links g) in
  let a, b_end = Link_key.ends key in
  let consulted_before = Shard.subs_shards_consulted sharded in
  let affected = Shard.affected_pairs sharded [ Payload.Link_failed (a, b_end) ] in
  let expected =
    List.filter_map
      (fun (pair, pg) -> if Link_set.mem key (Pathgraph.links pg) then Some pair else None)
      pushed
    |> List.sort_uniq compare
  in
  check Alcotest.(list (pair int int)) "failed cable hits exactly its subscribers" expected
    affected;
  check Alcotest.int "one shard index consulted" 1
    (Shard.subs_shards_consulted sharded - consulted_before);
  (* Restores invalidate nothing. *)
  check Alcotest.(list (pair int int)) "restore hits nobody" []
    (Shard.affected_pairs sharded [ Payload.Link_restored (a, b_end) ]);
  (* Unsubscribing removes the pair from ledger and index. *)
  (match expected with
  | [] -> ()
  | pair :: _ ->
    Shard.unsubscribe sharded pair;
    check Alcotest.bool "unsubscribed pair gone" true
      (Shard.cached_graph sharded ~src:(fst pair) ~dst:(snd pair) = None);
    let affected' = Shard.affected_pairs sharded [ Payload.Link_failed (a, b_end) ] in
    check Alcotest.(list (pair int int)) "index forgets unsubscribed pair"
      (List.filter (fun p -> p <> pair) expected)
      affected')

let test_shard_distance_ownership () =
  let b = Builder.fat_tree ~k:4 () in
  let sharded = Shard.create ~shards:4 b.Builder.graph in
  List.iter
    (fun (src, dst) -> ignore (Shard.serve_path_graph sharded ~src ~dst))
    (sample_pairs b.Builder.graph (Rng.create 5) 40);
  let roots = Shard.dist_cache_roots sharded in
  let total = Array.fold_left ( + ) 0 roots in
  check Alcotest.bool "tables memoized" true (total > 0);
  check Alcotest.bool "no shard owns everything" true
    (Array.for_all (fun r -> r < total) roots);
  let stats = Shard.stitch_stats sharded in
  check Alcotest.bool "queries were served" true (stats.Shard.served_pairs > 0);
  check Alcotest.bool "cross-region queries stitched" true (stats.Shard.stitched_pairs > 0);
  check Alcotest.bool "fetch split recorded" true
    (stats.Shard.local_fetches > 0 && stats.Shard.cross_fetches > 0)

let () =
  Alcotest.run "shard"
    [
      ( "tag_arena",
        [
          Alcotest.test_case "intern + dedup" `Quick test_arena_interns_and_dedups;
          Alcotest.test_case "growth + validation" `Quick test_arena_growth_and_validation;
        ] );
      ( "compact",
        [ Alcotest.test_case "roundtrip through arena" `Quick test_compact_roundtrip ] );
      ( "sharded controller",
        [
          QCheck_alcotest.to_alcotest sharded_serve_identical_prop;
          Alcotest.test_case "batch = sequential" `Quick test_shard_batch_matches_sequential;
          Alcotest.test_case "patch + probe fan-out" `Quick test_shard_patch_and_probe;
          Alcotest.test_case "ledger scoping" `Quick test_shard_ledger_scoping;
          Alcotest.test_case "distance ownership" `Quick test_shard_distance_ownership;
        ] );
    ]
