(* Tests for the topology substrate: graph, builders, routing, paths. *)

open Dumbnet.Topology
open Dumbnet.Topology.Types
module Rng = Dumbnet.Util.Rng

let check = Alcotest.check

(* --- graph --- *)

let small_graph () =
  let g = Graph.create () in
  let s0 = Graph.add_switch g ~ports:4 in
  let s1 = Graph.add_switch g ~ports:4 in
  let h0 = Graph.add_host g in
  Graph.connect g { sw = s0; port = 1 } { sw = s1; port = 1 };
  Graph.attach_host g h0 { sw = s0; port = 2 };
  (g, s0, s1, h0)

let test_graph_basics () =
  let g, s0, s1, h0 = small_graph () in
  check Alcotest.int "switches" 2 (Graph.num_switches g);
  check Alcotest.int "hosts" 1 (Graph.num_hosts g);
  check Alcotest.int "ports" 4 (Graph.ports_of g s0);
  Alcotest.(check bool) "endpoint switch" true
    (Graph.endpoint_at g { sw = s0; port = 1 } = Some (Switch s1));
  Alcotest.(check bool) "endpoint host" true
    (Graph.endpoint_at g { sw = s0; port = 2 } = Some (Host h0));
  Alcotest.(check bool) "empty port" true (Graph.endpoint_at g { sw = s0; port = 3 } = None);
  Alcotest.(check bool) "peer port" true
    (Graph.peer_port g { sw = s0; port = 1 } = Some { sw = s1; port = 1 });
  Alcotest.(check bool) "host location" true
    (Graph.host_location g h0 = Some { sw = s0; port = 2 })

let test_graph_rejects_misuse () =
  let g, s0, _, h0 = small_graph () in
  Alcotest.(check bool) "occupied port" true
    (try
       Graph.connect g { sw = s0; port = 1 } { sw = s0; port = 3 };
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "double attach" true
    (try
       Graph.attach_host g h0 { sw = s0; port = 3 };
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "port out of range" true
    (try
       Graph.connect g { sw = s0; port = 9 } { sw = s0; port = 3 };
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "too many ports" true
    (try
       ignore (Graph.add_switch g ~ports:255);
       false
     with Invalid_argument _ -> true)

let test_graph_link_state () =
  let g, s0, s1, _ = small_graph () in
  Alcotest.(check bool) "up" true (Graph.link_up g { sw = s0; port = 1 });
  Graph.set_link_state g { sw = s0; port = 1 } ~up:false;
  Alcotest.(check bool) "down" false (Graph.link_up g { sw = s0; port = 1 });
  Alcotest.(check bool) "down from other side" false (Graph.link_up g { sw = s1; port = 1 });
  Alcotest.(check bool) "neighbors hide down links" true (Graph.switch_neighbors g s0 = []);
  Graph.set_link_state g { sw = s1; port = 1 } ~up:true;
  Alcotest.(check bool) "restored" true (Graph.link_up g { sw = s0; port = 1 })

let test_graph_remove_link () =
  let g, s0, s1, h0 = small_graph () in
  Graph.remove_link g { sw = s0; port = 1 };
  Alcotest.(check bool) "both ends empty" true
    (Graph.endpoint_at g { sw = s0; port = 1 } = None
    && Graph.endpoint_at g { sw = s1; port = 1 } = None);
  Graph.remove_link g { sw = s0; port = 2 };
  Alcotest.(check bool) "host detached" true (Graph.host_location g h0 = None)

let test_graph_copy_equal () =
  let g, s0, _, _ = small_graph () in
  let g2 = Graph.copy g in
  Alcotest.(check bool) "copies equal" true (Graph.equal g g2);
  Graph.set_link_state g2 { sw = s0; port = 1 } ~up:false;
  Alcotest.(check bool) "state diverges" false (Graph.equal g g2);
  Alcotest.(check bool) "original untouched" true (Graph.link_up g { sw = s0; port = 1 })

let test_graph_connected () =
  let g, s0, _, _ = small_graph () in
  Alcotest.(check bool) "connected" true (Graph.connected g);
  Graph.set_link_state g { sw = s0; port = 1 } ~up:false;
  Alcotest.(check bool) "disconnected after cut" false (Graph.connected g)

let test_graph_explicit_ids () =
  let g = Graph.create () in
  Graph.add_switch_with_id g ~id:42 ~ports:4;
  Graph.add_host_with_id g ~id:7;
  Alcotest.(check bool) "switch exists" true (Graph.switch_ids g = [ 42 ]);
  Alcotest.(check bool) "host exists" true (Graph.host_ids g = [ 7 ]);
  let s = Graph.add_switch g ~ports:4 in
  check Alcotest.int "auto id skips" 43 s;
  Alcotest.(check bool) "duplicate rejected" true
    (try
       Graph.add_switch_with_id g ~id:42 ~ports:4;
       false
     with Invalid_argument _ -> true)

(* --- builders --- *)

let test_builder_figure1 () =
  let b = Builder.figure1 () in
  check Alcotest.int "switches" 5 (Graph.num_switches b.Builder.graph);
  check Alcotest.int "hosts" 6 (Graph.num_hosts b.Builder.graph);
  Alcotest.(check bool) "connected" true (Graph.connected b.Builder.graph);
  (* The paper's worked example: link S2-S3 joins S2-1 and S3-2 (our
     ids: S2=1, S3=2). *)
  Alcotest.(check bool) "S2-S3 link as in text" true
    (Graph.peer_port b.Builder.graph { sw = 1; port = 1 } = Some { sw = 2; port = 2 });
  Alcotest.(check bool) "controller at S3-9" true
    (Graph.host_location b.Builder.graph b.Builder.controller = Some { sw = 2; port = 9 })

let test_builder_testbed () =
  let b = Builder.testbed () in
  check Alcotest.int "7 switches" 7 (Graph.num_switches b.Builder.graph);
  check Alcotest.int "27 servers" 27 (Graph.num_hosts b.Builder.graph);
  check Alcotest.int "10 fabric links" 10 (List.length (Graph.switch_links b.Builder.graph));
  Alcotest.(check bool) "connected" true (Graph.connected b.Builder.graph)

let test_builder_leaf_spine () =
  let b = Builder.leaf_spine ~spines:3 ~leaves:4 ~hosts_per_leaf:2 () in
  check Alcotest.int "switches" 7 (Graph.num_switches b.Builder.graph);
  check Alcotest.int "hosts" 8 (Graph.num_hosts b.Builder.graph);
  check Alcotest.int "links" 12 (List.length (Graph.switch_links b.Builder.graph));
  Alcotest.(check bool) "connected" true (Graph.connected b.Builder.graph)

let test_builder_fat_tree () =
  let b = Builder.fat_tree ~k:4 () in
  check Alcotest.int "switches" 20 (Graph.num_switches b.Builder.graph);
  check Alcotest.int "hosts" 16 (Graph.num_hosts b.Builder.graph);
  Alcotest.(check bool) "connected" true (Graph.connected b.Builder.graph);
  Alcotest.(check bool) "k must be even" true
    (try
       ignore (Builder.fat_tree ~k:3 ());
       false
     with Invalid_argument _ -> true)

let test_builder_cube () =
  let b = Builder.cube ~n:3 ~controller_at:`Center () in
  check Alcotest.int "27 switches" 27 (Graph.num_switches b.Builder.graph);
  check Alcotest.int "one host per switch" 27 (Graph.num_hosts b.Builder.graph);
  check Alcotest.int "links" 54 (List.length (Graph.switch_links b.Builder.graph));
  Alcotest.(check bool) "connected" true (Graph.connected b.Builder.graph);
  match Graph.host_location b.Builder.graph b.Builder.controller with
  | Some loc -> check Alcotest.int "center controller" 13 loc.sw
  | None -> Alcotest.fail "controller detached"

let test_builder_random_regular () =
  let rng = Rng.create 3 in
  let b = Builder.random_regular ~rng ~switches:12 ~degree:3 ~hosts_per_switch:1 () in
  Alcotest.(check bool) "connected" true (Graph.connected b.Builder.graph);
  check Alcotest.int "hosts" 12 (Graph.num_hosts b.Builder.graph)

let test_builder_star () =
  let b = Builder.star ~leaves:4 ~hosts_per_leaf:2 () in
  check Alcotest.int "switches" 5 (Graph.num_switches b.Builder.graph);
  check Alcotest.int "hosts" 8 (Graph.num_hosts b.Builder.graph);
  check Alcotest.int "links" 4 (List.length (Graph.switch_links b.Builder.graph));
  Alcotest.(check bool) "connected" true (Graph.connected b.Builder.graph)

let test_builder_linear () =
  let b = Builder.linear ~n:5 () in
  check Alcotest.int "switches" 5 (Graph.num_switches b.Builder.graph);
  check Alcotest.int "links" 4 (List.length (Graph.switch_links b.Builder.graph))

(* --- routing --- *)

let test_bfs_distances () =
  let b = Builder.linear ~n:5 () in
  let adj = Routing.graph_adjacency b.Builder.graph in
  let d = Routing.bfs_distances adj ~from:0 in
  check Alcotest.int "distance to end" 4 (Hashtbl.find d 4);
  check Alcotest.int "distance to self" 0 (Hashtbl.find d 0)

let test_shortest_route () =
  let b = Builder.figure1 () in
  let adj = Routing.graph_adjacency b.Builder.graph in
  match Routing.shortest_route adj ~src:2 ~dst:3 with
  | Some route -> check Alcotest.int "3 switches" 3 (List.length route)
  | None -> Alcotest.fail "no route"

let test_shortest_route_same () =
  let b = Builder.linear ~n:2 () in
  let adj = Routing.graph_adjacency b.Builder.graph in
  Alcotest.(check bool) "trivial route" true
    (Routing.shortest_route adj ~src:0 ~dst:0 = Some [ 0 ])

let test_shortest_route_avoiding () =
  let b = Builder.figure1 () in
  let adj = Routing.graph_adjacency b.Builder.graph in
  match
    Routing.shortest_route_avoiding ~banned_nodes:(Switch_set.singleton 0) ~banned_edges:[] adj
      ~src:2 ~dst:3
  with
  | Some route -> Alcotest.(check bool) "avoids S1" true (not (List.mem 0 route))
  | None -> Alcotest.fail "no route"

let test_weighted_route () =
  let b = Builder.figure1 () in
  let adj = Routing.graph_adjacency b.Builder.graph in
  let weight (a : link_end) (b : link_end) = if a.sw = 0 || b.sw = 0 then 10. else 1. in
  match Routing.weighted_route ~weight adj ~src:2 ~dst:3 with
  | Some route -> Alcotest.(check bool) "prefers cheap spine" true (List.mem 1 route)
  | None -> Alcotest.fail "no route"

let test_k_shortest () =
  let b = Builder.figure1 () in
  let adj = Routing.graph_adjacency b.Builder.graph in
  let routes = Routing.k_shortest_routes adj ~src:2 ~dst:3 ~k:4 in
  Alcotest.(check bool) "at least 2" true (List.length routes >= 2);
  let lengths = List.map List.length routes in
  Alcotest.(check bool) "sorted" true (lengths = List.sort compare lengths);
  List.iter
    (fun r ->
      Alcotest.(check bool) "loop-free" true
        (List.length r = List.length (List.sort_uniq compare r)))
    routes;
  check Alcotest.int "distinct" (List.length routes)
    (List.length (List.sort_uniq compare routes))

let test_host_route_and_validate () =
  let b = Builder.testbed () in
  let g = b.Builder.graph in
  let src = List.nth b.Builder.hosts 0 and dst = List.nth b.Builder.hosts 20 in
  match Routing.host_route g ~src ~dst with
  | Some p ->
    Alcotest.(check bool) "validates" true (Path.validate g p);
    check Alcotest.int "tags match hops" (Path.length p) (List.length (Path.tags p))
  | None -> Alcotest.fail "no route"

(* --- path --- *)

let test_path_reverse () =
  let b = Builder.testbed () in
  let g = b.Builder.graph in
  let src = List.nth b.Builder.hosts 2 and dst = List.nth b.Builder.hosts 25 in
  match Routing.host_route g ~src ~dst with
  | None -> Alcotest.fail "no route"
  | Some p -> (
    match Path.reverse g p with
    | None -> Alcotest.fail "no reverse"
    | Some r ->
      Alcotest.(check bool) "reverse validates" true (Path.validate g r);
      check Alcotest.int "src swapped" p.Path.dst r.Path.src;
      check Alcotest.int "dst swapped" p.Path.src r.Path.dst;
      Alcotest.(check bool) "switches reversed" true
        (Path.switches r = List.rev (Path.switches p)))

let test_path_validate_rejects () =
  let b = Builder.figure1 () in
  let g = b.Builder.graph in
  let bogus = { Path.src = 3; hops = [ (3, 6) ]; dst = 4 } in
  Alcotest.(check bool) "bogus rejected" false (Path.validate g bogus);
  match Routing.host_route g ~src:3 ~dst:4 with
  | None -> Alcotest.fail "no route"
  | Some p ->
    (match p.Path.hops with
    | (sw, port) :: _ -> Graph.set_link_state g { sw; port } ~up:false
    | [] -> Alcotest.fail "empty path");
    Alcotest.(check bool) "dead link rejected" false (Path.validate g p)

let test_path_crosses () =
  let b = Builder.figure1 () in
  let g = b.Builder.graph in
  match Routing.host_route g ~src:3 ~dst:4 with
  | None -> Alcotest.fail "no route"
  | Some p -> (
    match p.Path.hops with
    | (sw, port) :: _ -> (
      let le = { sw; port } in
      match Graph.peer_port g le with
      | Some other ->
        let key = Link_key.make le other in
        Alcotest.(check bool) "crosses its own link" true (Path.crosses p key);
        Alcotest.(check bool) "uses_link agrees" true (Path.uses_link p g key)
      | None -> Alcotest.fail "no peer")
    | [] -> Alcotest.fail "empty path")

(* --- properties on random graphs --- *)

let random_built seed =
  let rng = Rng.create seed in
  Builder.random_regular ~rng ~switches:(6 + Rng.int rng 10) ~degree:3 ~hosts_per_switch:1 ()

let shortest_matches_bfs_prop =
  QCheck.Test.make ~name:"shortest_route length equals BFS distance" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let b = random_built seed in
      let adj = Routing.graph_adjacency b.Builder.graph in
      let switches = Graph.switch_ids b.Builder.graph in
      let src = List.hd switches and dst = List.nth switches (List.length switches - 1) in
      let d = Routing.bfs_distances adj ~from:src in
      match Routing.shortest_route adj ~src ~dst with
      | Some route -> List.length route = Hashtbl.find d dst + 1
      | None -> not (Hashtbl.mem d dst))

let k_shortest_valid_prop =
  QCheck.Test.make ~name:"k-shortest routes are valid concrete paths" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let b = random_built seed in
      let g = b.Builder.graph in
      let hosts = b.Builder.hosts in
      let src = List.hd hosts and dst = List.nth hosts (List.length hosts - 1) in
      let paths = Routing.k_host_paths g ~src ~dst ~k:4 in
      paths <> [] && List.for_all (Path.validate g) paths)

let reverse_roundtrip_prop =
  QCheck.Test.make ~name:"reverse of reverse is the original path" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let b = random_built seed in
      let g = b.Builder.graph in
      let hosts = b.Builder.hosts in
      let src = List.hd hosts and dst = List.nth hosts (List.length hosts / 2) in
      if src = dst then true
      else
        match Routing.host_route g ~src ~dst with
        | None -> true
        | Some p -> (
          match Path.reverse g p with
          | None -> false
          | Some r -> Option.map (Path.equal p) (Path.reverse g r) = Some true))

(* --- adjacency snapshots --- *)

(* The CSR snapshot must be indistinguishable from asking the graph
   directly, including neighbor order (port order), or memoized routing
   would quietly diverge from fresh routing. *)
let snapshot_agrees g =
  let snap = Graph.adjacency g in
  List.for_all
    (fun sw -> Adjacency.neighbors snap sw = Graph.switch_neighbors g sw)
    (Graph.switch_ids g)

let test_adjacency_matches_graph () =
  let b = Builder.fat_tree ~k:4 () in
  let g = b.Builder.graph in
  Alcotest.(check bool) "snapshot = switch_neighbors" true (snapshot_agrees g);
  let snap = Graph.adjacency g in
  check Alcotest.int "edge count symmetric"
    (List.fold_left (fun acc sw -> acc + List.length (Graph.switch_neighbors g sw)) 0
       (Graph.switch_ids g))
    (Adjacency.num_edges snap);
  Alcotest.(check bool) "unknown switch has no neighbors" true
    (Adjacency.neighbors snap 9999 = [])

let test_adjacency_cached_until_mutation () =
  let b = Builder.leaf_spine ~leaves:3 ~spines:2 ~hosts_per_leaf:1 () in
  let g = b.Builder.graph in
  let s0 = Graph.adjacency g in
  Alcotest.(check bool) "same generation, same snapshot" true (Graph.adjacency g == s0);
  let le = { sw = List.hd (Graph.switch_ids g); port = 1 } in
  Graph.set_link_state g le ~up:false;
  let s1 = Graph.adjacency g in
  Alcotest.(check bool) "mutation rebuilds" true (not (s1 == s0));
  Alcotest.(check bool) "rebuilt snapshot agrees" true (snapshot_agrees g);
  Graph.set_link_state g le ~up:true;
  Alcotest.(check bool) "restore agrees too" true (snapshot_agrees g)

let test_adjacency_bfs_matches_routing () =
  let b = Builder.fat_tree ~k:4 () in
  let g = b.Builder.graph in
  let snap = Graph.adjacency g in
  List.iter
    (fun from ->
      let via_snap = Adjacency.bfs_distances snap ~from in
      let via_lists = Routing.bfs_distances (Routing.graph_adjacency g) ~from in
      check Alcotest.int "same reach" (Hashtbl.length via_lists) (Hashtbl.length via_snap);
      Hashtbl.iter
        (fun sw d -> check Alcotest.int "same distance" d (Hashtbl.find via_snap sw))
        via_lists)
    (Graph.switch_ids g)

(* Randomized churn: link flaps, cable removals and fresh cables, in
   any order — after every mutation the snapshot must agree with the
   graph it summarizes. *)
let adjacency_under_mutation_prop =
  QCheck.Test.make ~name:"adjacency snapshot agrees under randomized mutation" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let b = Builder.random_regular ~rng:(Rng.split rng) ~switches:12 ~degree:3 ~hosts_per_switch:1 () in
      let g = b.Builder.graph in
      let switch_links () =
        List.map fst (Graph.switch_links g)
      in
      let ok = ref (snapshot_agrees g) in
      for _ = 1 to 30 do
        (match Rng.int rng 4 with
        | 0 | 1 -> (
          (* flap a random cabled switch-switch link *)
          match switch_links () with
          | [] -> ()
          | links ->
            let key = Rng.pick rng links in
            let le, _ = Types.Link_key.ends key in
            Graph.set_link_state g le ~up:(Rng.int rng 2 = 0)
          )
        | 2 -> (
          (* remove a cable outright *)
          match switch_links () with
          | [] -> ()
          | links -> Graph.remove_link g (fst (Types.Link_key.ends (Rng.pick rng links))))
        | _ -> (
          (* cable two free ports together, if any exist *)
          let free =
            List.concat_map
              (fun sw ->
                List.filter_map
                  (fun p ->
                    if Graph.endpoint_at g { sw; port = p } = None then Some { sw; port = p }
                    else None)
                  (List.init (Graph.ports_of g sw) (fun i -> i + 1)))
              (Graph.switch_ids g)
          in
          match free with
          | a :: (_ :: _ as rest) ->
            let other = Rng.pick rng rest in
            if other.sw <> a.sw then Graph.connect g a other
          | _ -> ()));
        ok := !ok && snapshot_agrees g
      done;
      !ok)

let () =
  Alcotest.run "topology"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "misuse rejected" `Quick test_graph_rejects_misuse;
          Alcotest.test_case "link state" `Quick test_graph_link_state;
          Alcotest.test_case "remove link" `Quick test_graph_remove_link;
          Alcotest.test_case "copy/equal" `Quick test_graph_copy_equal;
          Alcotest.test_case "connected" `Quick test_graph_connected;
          Alcotest.test_case "explicit ids" `Quick test_graph_explicit_ids;
        ] );
      ( "builders",
        [
          Alcotest.test_case "figure1" `Quick test_builder_figure1;
          Alcotest.test_case "testbed" `Quick test_builder_testbed;
          Alcotest.test_case "leaf-spine" `Quick test_builder_leaf_spine;
          Alcotest.test_case "fat tree" `Quick test_builder_fat_tree;
          Alcotest.test_case "cube" `Quick test_builder_cube;
          Alcotest.test_case "random regular" `Quick test_builder_random_regular;
          Alcotest.test_case "star" `Quick test_builder_star;
          Alcotest.test_case "linear" `Quick test_builder_linear;
        ] );
      ( "routing",
        [
          Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
          Alcotest.test_case "shortest route" `Quick test_shortest_route;
          Alcotest.test_case "trivial route" `Quick test_shortest_route_same;
          Alcotest.test_case "avoiding" `Quick test_shortest_route_avoiding;
          Alcotest.test_case "weighted" `Quick test_weighted_route;
          Alcotest.test_case "k-shortest" `Quick test_k_shortest;
          Alcotest.test_case "host route validates" `Quick test_host_route_and_validate;
          QCheck_alcotest.to_alcotest shortest_matches_bfs_prop;
          QCheck_alcotest.to_alcotest k_shortest_valid_prop;
        ] );
      ( "path",
        [
          Alcotest.test_case "reverse" `Quick test_path_reverse;
          Alcotest.test_case "validate rejects" `Quick test_path_validate_rejects;
          Alcotest.test_case "crosses" `Quick test_path_crosses;
          QCheck_alcotest.to_alcotest reverse_roundtrip_prop;
        ] );
      ( "adjacency",
        [
          Alcotest.test_case "matches graph" `Quick test_adjacency_matches_graph;
          Alcotest.test_case "cached until mutation" `Quick test_adjacency_cached_until_mutation;
          Alcotest.test_case "bfs matches routing" `Quick test_adjacency_bfs_matches_routing;
          QCheck_alcotest.to_alcotest adjacency_under_mutation_prop;
        ] );
    ]
