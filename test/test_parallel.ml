(* Tests for the domain pool and the parallel path-graph service: chunk
   arithmetic, exception propagation with every domain joined, and the
   determinism contract — a batch served over any number of domains is
   byte-identical to serving it sequentially. *)

open Dumbnet.Topology
module Topo_store = Dumbnet.Control.Topo_store
module Pool = Dumbnet.Util.Pool
module Rng = Dumbnet.Util.Rng

let check = Alcotest.check

(* --- pool mechanics --- *)

let test_default_jobs_env () =
  let derived = min (Domain.recommended_domain_count ()) Pool.max_default_jobs in
  Unix.putenv "DUMBNET_JOBS" "3";
  check Alcotest.int "env wins" 3 (Pool.default_jobs ());
  Unix.putenv "DUMBNET_JOBS" "0";
  check Alcotest.int "non-positive ignored" derived (Pool.default_jobs ());
  Unix.putenv "DUMBNET_JOBS" "";
  check Alcotest.int "empty ignored" derived (Pool.default_jobs ())

let test_worthwhile () =
  check Alcotest.bool "jobs=1 never" false (Pool.worthwhile ~jobs:1 ~items:10_000);
  check Alcotest.bool "tiny batch falls through" false
    (Pool.worthwhile ~jobs:4 ~items:(4 * Pool.min_items_per_worker - 1));
  check Alcotest.bool "big batch fans out" true
    (Pool.worthwhile ~jobs:4 ~items:(4 * Pool.min_items_per_worker))

let test_pool_chunks_cover () =
  (* Every index is visited exactly once, whatever the jobs/n ratio —
     including n < jobs (empty slices) and n = 0. *)
  List.iter
    (fun (jobs, n) ->
      Pool.with_pool ~jobs (fun pool ->
          let marks = Array.make (max n 1) 0 in
          Pool.run_chunks pool ~n (fun ~worker:_ ~lo ~hi ->
              for i = lo to hi - 1 do
                (* Disjoint slices: no two domains touch the same cell. *)
                marks.(i) <- marks.(i) + 1
              done);
          Array.iteri
            (fun i m ->
              if i < n then
                check Alcotest.int (Printf.sprintf "jobs=%d n=%d index %d" jobs n i) 1 m)
            marks))
    [ (1, 10); (2, 10); (4, 10); (4, 3); (4, 0); (3, 1); (8, 64) ]

let test_parallel_map_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let input = Array.init 101 (fun i -> i) in
      let out = Pool.parallel_map pool ~f:(fun ~worker:_ x -> x * x) input in
      check Alcotest.(array int) "squares in order" (Array.map (fun x -> x * x) input) out;
      check Alcotest.(array int) "empty input" [||]
        (Pool.parallel_map pool ~f:(fun ~worker:_ x -> x) [||]))

let test_pool_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let ran = Array.make 4 false in
      (* Workers 1 and 3 fail; the lowest-numbered failure wins, and the
         surviving chunks still run to completion. *)
      (try
         Pool.run_chunks pool ~n:4 (fun ~worker ~lo ~hi:_ ->
             ran.(lo) <- true;
             if worker = 1 || worker = 3 then failwith (Printf.sprintf "worker %d" worker))
       with
      | Failure msg -> check Alcotest.string "lowest worker re-raised" "worker 1" msg
      | e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e));
      Array.iteri (fun i r -> check Alcotest.bool (Printf.sprintf "chunk %d ran" i) true r) ran;
      (* The pool survives a failed batch: same domains, next call works. *)
      let out = Pool.parallel_map pool ~f:(fun ~worker:_ x -> x + 1) [| 1; 2; 3 |] in
      check Alcotest.(array int) "pool reusable after raise" [| 2; 3; 4 |] out)

let test_pool_shutdown () =
  let pool = Pool.create ~jobs:3 () in
  check Alcotest.int "jobs" 3 (Pool.jobs pool);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  (try
     Pool.run_chunks pool ~n:1 (fun ~worker:_ ~lo:_ ~hi:_ -> ());
     Alcotest.fail "expected Invalid_argument after shutdown"
   with Invalid_argument _ -> ());
  match Pool.create ~jobs:0 () with
  | exception Invalid_argument _ -> ()
  | p ->
    Pool.shutdown p;
    Alcotest.fail "jobs=0 should be rejected"

(* --- parallel = sequential on the path-graph service --- *)

let all_pairs hosts =
  Array.of_list
    (List.concat_map
       (fun src -> List.filter_map (fun dst -> if src <> dst then Some (src, dst) else None) hosts)
       hosts)

let wire_forms results = Array.map (Option.map Pathgraph.to_wire) results

(* Serve [pairs] from a fresh store over [jobs] domains and return the
   wire forms. A fresh store per call keeps cache state from leaking
   between runs — determinism must not depend on warm caches. *)
let serve ~jobs ~randomize built pairs =
  let store = Topo_store.create built.Builder.graph in
  let serve_with pool = Topo_store.serve_path_graphs ~randomize ?pool store pairs in
  if jobs = 1 then wire_forms (serve_with None)
  else Pool.with_pool ~jobs (fun pool -> wire_forms (serve_with (Some pool)))

let check_parallel_matches_sequential ~randomize built =
  let pairs = all_pairs built.Builder.hosts in
  let reference = serve ~jobs:1 ~randomize built pairs in
  List.iter
    (fun jobs ->
      let got = serve ~jobs ~randomize built pairs in
      check Alcotest.bool
        (Printf.sprintf "jobs=%d matches sequential (randomize=%b)" jobs randomize)
        true
        (got = reference))
    [ 2; 4 ]

let test_fat_tree_parallel_matches () =
  let built = Builder.fat_tree ~k:4 () in
  check_parallel_matches_sequential ~randomize:false built;
  check_parallel_matches_sequential ~randomize:true built

let jellyfish_prop =
  QCheck.Test.make ~name:"parallel = sequential on random jellyfish" ~count:15
    QCheck.(pair small_nat (bool))
    (fun (seed, randomize) ->
      let built =
        Builder.random_regular ~rng:(Rng.create (seed + 1)) ~switches:12 ~degree:4
          ~hosts_per_switch:1 ()
      in
      let pairs = all_pairs built.Builder.hosts in
      let reference = serve ~jobs:1 ~randomize built pairs in
      List.for_all (fun jobs -> serve ~jobs ~randomize built pairs = reference) [ 2; 4 ])

(* 20 back-to-back randomized parallel batches over live domains: the
   digest must never move, whatever the scheduler did that iteration. *)
let test_determinism_digest_smoke () =
  let built = Builder.fat_tree ~k:4 () in
  let pairs = all_pairs built.Builder.hosts in
  let digest_of forms = Digest.to_hex (Digest.string (Marshal.to_string forms [])) in
  let reference = digest_of (serve ~jobs:1 ~randomize:true built pairs) in
  for i = 1 to 20 do
    let d = digest_of (serve ~jobs:4 ~randomize:true built pairs) in
    check Alcotest.string (Printf.sprintf "iteration %d digest" i) reference d
  done

(* --- single-writer rule bookkeeping --- *)

let test_in_batch_flag () =
  let built = Builder.fat_tree ~k:4 () in
  let store = Topo_store.create built.Builder.graph in
  check Alcotest.bool "not in batch at rest" false (Topo_store.in_batch store);
  ignore (Topo_store.serve_path_graphs store (all_pairs built.Builder.hosts));
  check Alcotest.bool "flag cleared after batch" false (Topo_store.in_batch store);
  (* Mutators work again once the batch is over. *)
  let hits, misses = Topo_store.dist_cache_stats store in
  check Alcotest.bool "cache was exercised" true (hits > 0 && misses > 0);
  Topo_store.invalidate_dist_cache store;
  check Alcotest.bool "invalidate after batch is fine" true (not (Topo_store.in_batch store))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "DUMBNET_JOBS parsing" `Quick test_default_jobs_env;
          Alcotest.test_case "worthwhile heuristic" `Quick test_worthwhile;
          Alcotest.test_case "chunks cover exactly once" `Quick test_pool_chunks_cover;
          Alcotest.test_case "parallel_map preserves order" `Quick test_parallel_map_order;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception_propagation;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
        ] );
      ( "path-graph batches",
        [
          Alcotest.test_case "fat-tree parallel = sequential" `Quick
            test_fat_tree_parallel_matches;
          QCheck_alcotest.to_alcotest jellyfish_prop;
          Alcotest.test_case "20x digest smoke" `Quick test_determinism_digest_smoke;
          Alcotest.test_case "in_batch bookkeeping" `Quick test_in_batch_flag;
        ] );
    ]
