(* Unit and property tests for the utility layer: deterministic RNG,
   binary heap, statistics, table rendering. *)

module Rng = Dumbnet.Util.Rng
module Heap = Dumbnet.Util.Heap
module Stats = Dumbnet.Util.Stats
module Table = Dumbnet.Util.Table

let check = Alcotest.check

(* --- rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 1 and b = Rng.create 1 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_matters () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_bad_bound () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0. && v < 2.5)
  done

let test_rng_pick () =
  let rng = Rng.create 11 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (List.mem (Rng.pick rng [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick rng []))

let test_rng_permutation () =
  let rng = Rng.create 13 in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_exponential_positive () =
  let rng = Rng.create 17 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Rng.exponential rng 10. >= 0.)
  done

(* --- heap --- *)

let test_heap_ordering () =
  let h = Heap.create ~compare in
  List.iter (fun k -> Heap.push h k k) [ 5; 3; 9; 1; 7; 1; 4 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (k, _) ->
      out := k :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list int) "sorted" [ 1; 1; 3; 4; 5; 7; 9 ] (List.rev !out)

let test_heap_fifo_on_ties () =
  let h = Heap.create ~compare in
  Heap.push h 1 "first";
  Heap.push h 1 "second";
  Heap.push h 1 "third";
  let next () =
    match Heap.pop h with
    | Some (_, v) -> v
    | None -> "empty"
  in
  check Alcotest.string "fifo 1" "first" (next ());
  check Alcotest.string "fifo 2" "second" (next ());
  check Alcotest.string "fifo 3" "third" (next ())

let test_heap_peek_size () =
  let h = Heap.create ~compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h 2 ();
  Heap.push h 1 ();
  check Alcotest.int "size" 2 (Heap.size h);
  (match Heap.peek h with
  | Some (k, ()) -> check Alcotest.int "peek min" 1 k
  | None -> Alcotest.fail "peek on non-empty");
  check Alcotest.int "peek keeps size" 2 (Heap.size h);
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let heap_sort_prop =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Heap.create ~compare in
      List.iter (fun k -> Heap.push h k ()) keys;
      let rec drain acc =
        match Heap.pop h with
        | Some (k, ()) -> drain (k :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare keys)

(* Interleaved pushes and pops against a reference model: every pop
   must return the element with the least (key, arrival) pair — i.e.
   the heap stays a stable priority queue mid-stream, not only when
   drained at the end. [Some k] pushes key k (value = arrival index),
   [None] pops. *)
let heap_interleaved_prop =
  QCheck.Test.make ~name:"heap stable under interleaved push/pop" ~count:200
    QCheck.(list (option small_int))
    (fun ops ->
      let h = Heap.create ~compare in
      let model = ref [] (* (key, arrival), ascending *) in
      let arrival = ref 0 in
      let ok = ref true in
      let pop_matches () =
        match (Heap.pop h, !model) with
        | None, [] -> ()
        | Some (k, v), (mk, mv) :: rest ->
          if k <> mk || v <> mv then ok := false;
          model := rest
        | Some _, [] | None, _ :: _ -> ok := false
      in
      List.iter
        (function
          | Some k ->
            Heap.push h k !arrival;
            model :=
              List.merge compare !model [ (k, !arrival) ];
            incr arrival
          | None -> pop_matches ())
        ops;
      while not (Heap.is_empty h) do
        pop_matches ()
      done;
      !ok && !model = [])

(* --- stats --- *)

let feq = Alcotest.float 1e-9

let test_stats_mean_stddev () =
  check feq "mean" 3. (Stats.mean [ 1.; 2.; 3.; 4.; 5. ]);
  check feq "mean empty" 0. (Stats.mean []);
  check feq "stddev" (sqrt 2.) (Stats.stddev [ 1.; 2.; 3.; 4.; 5. ]);
  check feq "stddev singleton" 0. (Stats.stddev [ 42. ])

let test_stats_percentile () =
  let s = [ 10.; 20.; 30.; 40. ] in
  check feq "p0" 10. (Stats.percentile 0. s);
  check feq "p100" 40. (Stats.percentile 100. s);
  check feq "median interpolates" 25. (Stats.median s);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile 50. []))

let test_stats_cdf () =
  let c = Stats.cdf [ 1.; 2.; 2.; 4. ] in
  check feq "at 0" 0. (Stats.cdf_at c 0.);
  check feq "at 1" 0.25 (Stats.cdf_at c 1.);
  check feq "at 2" 0.75 (Stats.cdf_at c 2.);
  check feq "at 100" 1. (Stats.cdf_at c 100.)

let test_stats_histogram () =
  let bins = Stats.histogram ~bins:2 [ 0.; 1.; 2.; 3. ] in
  check Alcotest.int "two bins" 2 (List.length bins);
  let total = List.fold_left (fun acc (_, _, n) -> acc + n) 0 bins in
  check Alcotest.int "all samples" 4 total

let test_stats_summary () =
  let s = Stats.summarize [ 1.; 2.; 3. ] in
  check Alcotest.int "count" 3 s.Stats.count;
  check feq "min" 1. s.Stats.min;
  check feq "max" 3. s.Stats.max;
  check feq "p50" 2. s.Stats.p50

let percentile_bounds_prop =
  QCheck.Test.make ~name:"percentile stays within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 30) (float_bound_exclusive 1000.)) (float_bound_inclusive 100.))
    (fun (samples, p) ->
      let lo, hi = Stats.min_max samples in
      let v = Stats.percentile p samples in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

(* --- table --- *)

let test_table_render () =
  let t = Table.create [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  Alcotest.(check bool) "pads short rows" true
    (List.length (String.split_on_char '\n' s) >= 4)

let test_table_too_wide () =
  let t = Table.create [ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: more cells than headers") (fun () ->
      Table.add_row t [ "1"; "2" ])

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed matters" `Quick test_rng_seed_matters;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_on_ties;
          Alcotest.test_case "peek/size/clear" `Quick test_heap_peek_size;
          QCheck_alcotest.to_alcotest heap_sort_prop;
          QCheck_alcotest.to_alcotest heap_interleaved_prop;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "cdf" `Quick test_stats_cdf;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          QCheck_alcotest.to_alcotest percentile_bounds_prop;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "too wide" `Quick test_table_too_wide;
        ] );
    ]
